#include "vf/parti/schedule.hpp"

#include <algorithm>
#include <unordered_map>

#include "vf/halo/plan.hpp"

namespace vf::parti {

Schedule::Schedule(msg::Context& ctx, dist::DistHandle target,
                   std::vector<dist::IndexVec> points)
    : Schedule(ctx, std::move(target), std::move(points), halo::HaloHandle{}) {
}

Schedule::Schedule(msg::Context& ctx, dist::DistHandle target,
                   std::vector<dist::IndexVec> points, halo::HaloHandle halo)
    : halo_(std::move(halo)), target_(std::move(target)) {
  if (!target_) {
    throw std::invalid_argument("Schedule: null target distribution handle");
  }
  dom_ = target_->domain();
  const int np = ctx.nprocs();
  const int me = ctx.rank();
  n_points_ = points.size();
  occ_positions_.resize(static_cast<std::size_t>(np));
  occ_unique_index_.resize(static_cast<std::size_t>(np));
  req_unique_counts_.assign(static_cast<std::size_t>(np), 0);

  // The filled ghost widths of (target, halo) on this rank: points inside
  // them are current after an exchange_overlap(), so the inspector plants
  // them in the halo-read list instead of requesting them remotely.
  halo::HaloFill fill;
  const bool use_halo = halo_ && !halo_->empty();
  if (use_halo) fill = halo::filled_widths(*target_, *halo_, me);
  const dist::LocalLayout L = target_->layout_for(me);
  const auto halo_readable = [&](const dist::IndexVec& pt) {
    if (!use_halo || !fill.member) return false;
    int ghost_dims = 0;
    for (int d = 0; d < dom_.rank(); ++d) {
      const dist::DimMap& m = target_->dim_map(d);
      const int c = static_cast<int>(L.coords[d]);
      if (m.proc_of(pt[d]) == c) continue;  // owned in this dimension
      if (!m.contiguous()) return false;
      const auto seg = m.segment(c);
      if (!seg) return false;
      if (pt[d] < seg->lo && seg->lo - pt[d] <= fill.lo[d]) {
        ++ghost_dims;
        continue;
      }
      if (pt[d] > seg->hi && pt[d] - seg->hi <= fill.hi[d]) {
        ++ghost_dims;
        continue;
      }
      return false;
    }
    return ghost_dims == 1 || (ghost_dims > 1 && fill.corners);
  };

  // Group this rank's requests by owner and deduplicate per owner, in
  // order of first occurrence.  Only the unique linear ids travel.
  std::vector<std::vector<dist::Index>> unique_ids(
      static_cast<std::size_t>(np));
  std::vector<std::unordered_map<dist::Index, std::size_t>> uniq(
      static_cast<std::size_t>(np));
  for (std::size_t k = 0; k < points.size(); ++k) {
    const dist::IndexVec& pt = points[k];
    // Validate against the target domain up front: an out-of-domain point
    // must fail here, with the offending point named, before anything is
    // planted in the serve/request structures.  (Relying on downstream
    // per-dimension checks would report a DimMap range error instead and
    // leaves the guarantee at the mercy of every map representation.)
    if (!dom_.contains(pt)) {
      throw std::out_of_range(
          "Schedule inspector: requested point " + pt.to_string() +
          " is outside the target's index domain");
    }
    const int p = target_->owner_rank(pt);
    const dist::Index lin = dom_.linearize(pt);
    if (p == me) {
      local_linear_.push_back(lin);
      local_positions_.push_back(k);
      continue;
    }
    if (halo_readable(pt)) {
      halo_linear_.push_back(lin);
      halo_positions_.push_back(k);
      continue;
    }
    const auto up = static_cast<std::size_t>(p);
    auto [it, inserted] = uniq[up].try_emplace(lin, uniq[up].size());
    if (inserted) unique_ids[up].push_back(lin);
    occ_positions_[up].push_back(k);
    occ_unique_index_[up].push_back(it->second);
  }
  for (std::size_t p = 0; p < uniq.size(); ++p) {
    req_unique_counts_[p] = unique_ids[p].size();
    n_unique_offproc_ += unique_ids[p].size();
  }

  // Inspector exchange: ship the unique request lists to the owners.  This
  // is the only count-establishing collective; executors replay with
  // pre-agreed counts.
  auto incoming = ctx.alltoallv(std::move(unique_ids));
  serve_start_.assign(static_cast<std::size_t>(np) + 1, 0);
  expect_scatter_.assign(static_cast<std::size_t>(np), 0);
  std::size_t total = 0;
  for (int s = 0; s < np; ++s) {
    const auto us = static_cast<std::size_t>(s);
    serve_start_[us] = total;
    total += incoming[us].size();
    expect_scatter_[us] = incoming[us].size();
  }
  serve_start_[static_cast<std::size_t>(np)] = total;
  serve_linear_.reserve(total);
  for (int s = 0; s < np; ++s) {
    const auto& ids = incoming[static_cast<std::size_t>(s)];
    serve_linear_.insert(serve_linear_.end(), ids.begin(), ids.end());
  }
}

const Schedule::Binding& Schedule::bind(const rt::DistArrayBase& a) const {
  const dist::DistHandle& d = a.dist_handle();
  // Multi-array binding cache: most recently used first.  The hot path is
  // an integer compare and a pointer compare against the front entry.
  for (std::size_t k = 0; k < bindings_.size(); ++k) {
    Binding& b = bindings_[k];
    if (b.array_serial == a.serial() && b.dist == d) {
      ++binding_hits_;
      if (k != 0) {
        // Rotate (not swap) the hit to the front so the tail keeps true
        // recency order and pop_back always evicts the least recent.
        std::rotate(bindings_.begin(), bindings_.begin() + k,
                    bindings_.begin() + k + 1);
      }
      return bindings_.front();
    }
  }
  // Identity hit against the inspected target is the expected case; a
  // descriptor-only swap to an equivalent spelling still binds through
  // the mapping-level comparison.  Only a genuinely different mapping is
  // rejected.
  if (d != target_ && (!d || !d->same_mapping(*target_))) {
    throw std::logic_error(
        "Schedule: array " + a.name() +
        "'s distribution does not match the inspected target (was the "
        "array redistributed since the inspector ran?)");
  }
  // Halo-satisfied reads address the array's ghost storage, so its
  // overlap description must be the inspected one -- one pointer compare
  // thanks to interning.
  if (!halo_linear_.empty() && a.halo_spec() != halo_) {
    throw std::logic_error(
        "Schedule: array " + a.name() +
        "'s halo spec does not match the one this schedule was inspected "
        "with");
  }
  ++binding_misses_;
  // An array holds exactly one descriptor at a time, so on a miss every
  // cached binding with this serial is stale (the array was redistributed
  // to a different -- mapping-equivalent -- handle since it was
  // translated).  Left in place, each DISTRIBUTE flip would leak one of
  // the kBindingCapacity slots until LRU eviction and could squeeze out
  // live bindings of other arrays; purge them now.
  std::erase_if(bindings_, [&](const Binding& sb) {
    return sb.array_serial == a.serial();
  });
  Binding b;
  b.array_serial = a.serial();
  b.dist = d;
  b.serve_off.resize(serve_linear_.size());
  for (std::size_t k = 0; k < serve_linear_.size(); ++k) {
    b.serve_off[k] = static_cast<std::size_t>(
        a.storage_offset(dom_.delinearize(serve_linear_[k])));
  }
  b.local_off.resize(local_linear_.size());
  for (std::size_t k = 0; k < local_linear_.size(); ++k) {
    b.local_off[k] = static_cast<std::size_t>(
        a.storage_offset(dom_.delinearize(local_linear_[k])));
  }
  b.halo_off.resize(halo_linear_.size());
  for (std::size_t k = 0; k < halo_linear_.size(); ++k) {
    b.halo_off[k] = static_cast<std::size_t>(
        a.halo_offset(dom_.delinearize(halo_linear_[k])));
  }
  if (bindings_.size() >= kBindingCapacity) bindings_.pop_back();
  bindings_.insert(bindings_.begin(), std::move(b));
  return bindings_.front();
}

}  // namespace vf::parti
