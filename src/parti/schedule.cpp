#include "vf/parti/schedule.hpp"

#include <algorithm>
#include <unordered_map>

namespace vf::parti {

Schedule::Schedule(msg::Context& ctx, dist::DistHandle target,
                   std::vector<dist::IndexVec> points)
    : target_(std::move(target)) {
  if (!target_) {
    throw std::invalid_argument("Schedule: null target distribution handle");
  }
  dom_ = target_->domain();
  const int np = ctx.nprocs();
  const int me = ctx.rank();
  n_points_ = points.size();
  occ_positions_.resize(static_cast<std::size_t>(np));
  occ_unique_index_.resize(static_cast<std::size_t>(np));
  req_unique_counts_.assign(static_cast<std::size_t>(np), 0);

  // Group this rank's requests by owner and deduplicate per owner, in
  // order of first occurrence.  Only the unique linear ids travel.
  std::vector<std::vector<dist::Index>> unique_ids(
      static_cast<std::size_t>(np));
  std::vector<std::unordered_map<dist::Index, std::size_t>> uniq(
      static_cast<std::size_t>(np));
  for (std::size_t k = 0; k < points.size(); ++k) {
    const dist::IndexVec& pt = points[k];
    const int p = target_->owner_rank(pt);
    const dist::Index lin = dom_.linearize(pt);
    if (p == me) {
      local_linear_.push_back(lin);
      local_positions_.push_back(k);
      continue;
    }
    const auto up = static_cast<std::size_t>(p);
    auto [it, inserted] = uniq[up].try_emplace(lin, uniq[up].size());
    if (inserted) unique_ids[up].push_back(lin);
    occ_positions_[up].push_back(k);
    occ_unique_index_[up].push_back(it->second);
  }
  for (std::size_t p = 0; p < uniq.size(); ++p) {
    req_unique_counts_[p] = unique_ids[p].size();
    n_unique_offproc_ += unique_ids[p].size();
  }

  // Inspector exchange: ship the unique request lists to the owners.  This
  // is the only count-establishing collective; executors replay with
  // pre-agreed counts.
  auto incoming = ctx.alltoallv(std::move(unique_ids));
  serve_start_.assign(static_cast<std::size_t>(np) + 1, 0);
  expect_scatter_.assign(static_cast<std::size_t>(np), 0);
  std::size_t total = 0;
  for (int s = 0; s < np; ++s) {
    const auto us = static_cast<std::size_t>(s);
    serve_start_[us] = total;
    total += incoming[us].size();
    expect_scatter_[us] = incoming[us].size();
  }
  serve_start_[static_cast<std::size_t>(np)] = total;
  serve_linear_.reserve(total);
  for (int s = 0; s < np; ++s) {
    const auto& ids = incoming[static_cast<std::size_t>(s)];
    serve_linear_.insert(serve_linear_.end(), ids.begin(), ids.end());
  }
}

const Schedule::Binding& Schedule::bind(const rt::DistArrayBase& a) const {
  const dist::DistHandle& d = a.dist_handle();
  // Multi-array binding cache: most recently used first.  The hot path is
  // an integer compare and a pointer compare against the front entry.
  for (std::size_t k = 0; k < bindings_.size(); ++k) {
    Binding& b = bindings_[k];
    if (b.array_serial == a.serial() && b.dist == d) {
      ++binding_hits_;
      if (k != 0) {
        // Rotate (not swap) the hit to the front so the tail keeps true
        // recency order and pop_back always evicts the least recent.
        std::rotate(bindings_.begin(), bindings_.begin() + k,
                    bindings_.begin() + k + 1);
      }
      return bindings_.front();
    }
  }
  // Identity hit against the inspected target is the expected case; a
  // descriptor-only swap to an equivalent spelling still binds through
  // the mapping-level comparison.  Only a genuinely different mapping is
  // rejected.
  if (d != target_ && (!d || !d->same_mapping(*target_))) {
    throw std::logic_error(
        "Schedule: array " + a.name() +
        "'s distribution does not match the inspected target (was the "
        "array redistributed since the inspector ran?)");
  }
  ++binding_misses_;
  Binding b;
  b.array_serial = a.serial();
  b.dist = d;
  b.serve_off.resize(serve_linear_.size());
  for (std::size_t k = 0; k < serve_linear_.size(); ++k) {
    b.serve_off[k] = static_cast<std::size_t>(
        a.storage_offset(dom_.delinearize(serve_linear_[k])));
  }
  b.local_off.resize(local_linear_.size());
  for (std::size_t k = 0; k < local_linear_.size(); ++k) {
    b.local_off[k] = static_cast<std::size_t>(
        a.storage_offset(dom_.delinearize(local_linear_[k])));
  }
  if (bindings_.size() >= kBindingCapacity) bindings_.pop_back();
  bindings_.insert(bindings_.begin(), std::move(b));
  return bindings_.front();
}

}  // namespace vf::parti
