#include "vf/parti/schedule.hpp"

#include <algorithm>
#include <unordered_map>

#include "vf/halo/plan.hpp"

namespace vf::parti {

Schedule::Schedule(msg::Context& ctx, dist::DistHandle target,
                   std::vector<dist::IndexVec> points)
    : Schedule(ctx, std::move(target), std::move(points), halo::HaloHandle{}) {
}

Schedule::Schedule(msg::Context& ctx, dist::DistHandle target,
                   std::vector<dist::IndexVec> points, halo::HaloHandle halo)
    : halo_(std::move(halo)), target_(std::move(target)) {
  init(ctx, std::move(points), SkewConfig{});
}

Schedule::Schedule(msg::Context& ctx, dist::DistHandle target,
                   std::vector<dist::IndexVec> points, const SkewConfig& cfg)
    : target_(std::move(target)) {
  init(ctx, std::move(points), cfg);
}

void Schedule::init(msg::Context& ctx, std::vector<dist::IndexVec> points,
                    const SkewConfig& cfg) {
  if (!target_) {
    throw std::invalid_argument("Schedule: null target distribution handle");
  }
  dom_ = target_->domain();
  const int np = ctx.nprocs();
  const int me = ctx.rank();
  n_points_ = points.size();
  occ_positions_.resize(static_cast<std::size_t>(np));
  occ_unique_index_.resize(static_cast<std::size_t>(np));
  req_unique_counts_.assign(static_cast<std::size_t>(np), 0);

  // The filled ghost widths of (target, halo) on this rank: points inside
  // them are current after an exchange_overlap(), so the inspector plants
  // them in the halo-read list instead of requesting them remotely.
  halo::HaloFill fill;
  const bool use_halo = halo_ && !halo_->empty();
  if (use_halo) fill = halo::filled_widths(*target_, *halo_, me);
  const dist::LocalLayout L = target_->layout_for(me);
  const auto halo_readable = [&](const dist::IndexVec& pt) {
    if (!use_halo || !fill.member) return false;
    int ghost_dims = 0;
    for (int d = 0; d < dom_.rank(); ++d) {
      const dist::DimMap& m = target_->dim_map(d);
      const int c = static_cast<int>(L.coords[d]);
      if (m.proc_of(pt[d]) == c) continue;  // owned in this dimension
      if (!m.contiguous()) return false;
      const auto seg = m.segment(c);
      if (!seg) return false;
      if (pt[d] < seg->lo && seg->lo - pt[d] <= fill.lo[d]) {
        ++ghost_dims;
        continue;
      }
      if (pt[d] > seg->hi && pt[d] - seg->hi <= fill.hi[d]) {
        ++ghost_dims;
        continue;
      }
      return false;
    }
    return ghost_dims == 1 || (ghost_dims > 1 && fill.corners);
  };

  // Group this rank's requests by owner and deduplicate per owner, in
  // order of first occurrence.  Only the unique linear ids travel.
  std::vector<std::vector<dist::Index>> unique_ids(
      static_cast<std::size_t>(np));
  std::vector<std::unordered_map<dist::Index, std::size_t>> uniq(
      static_cast<std::size_t>(np));
  for (std::size_t k = 0; k < points.size(); ++k) {
    const dist::IndexVec& pt = points[k];
    // Validate against the target domain up front: an out-of-domain point
    // must fail here, with the offending point named, before anything is
    // planted in the serve/request structures.  (Relying on downstream
    // per-dimension checks would report a DimMap range error instead and
    // leaves the guarantee at the mercy of every map representation.)
    if (!dom_.contains(pt)) {
      throw std::out_of_range(
          "Schedule inspector: requested point " + pt.to_string() +
          " is outside the target's index domain");
    }
    const int p = target_->owner_rank(pt);
    const dist::Index lin = dom_.linearize(pt);
    if (p == me) {
      local_linear_.push_back(lin);
      local_positions_.push_back(k);
      continue;
    }
    if (halo_readable(pt)) {
      halo_linear_.push_back(lin);
      halo_positions_.push_back(k);
      continue;
    }
    const auto up = static_cast<std::size_t>(p);
    auto [it, inserted] = uniq[up].try_emplace(lin, uniq[up].size());
    if (inserted) unique_ids[up].push_back(lin);
    occ_positions_[up].push_back(k);
    occ_unique_index_[up].push_back(it->second);
  }
  for (std::size_t p = 0; p < uniq.size(); ++p) {
    req_unique_counts_[p] = unique_ids[p].size();
    n_unique_offproc_ += unique_ids[p].size();
  }

  // Inspector exchange: ship the unique request lists to the owners.  This
  // is the only count-establishing collective; executors replay with
  // pre-agreed counts.  The skew pass needs the shipped lists again (to
  // carve heavy elements out of the per-peer occurrence indexing), so it
  // keeps a copy before the move.
  std::vector<std::vector<dist::Index>> requested;
  if (cfg.enabled) requested = unique_ids;
  auto incoming = ctx.alltoallv(std::move(unique_ids));
  serve_start_.assign(static_cast<std::size_t>(np) + 1, 0);
  expect_scatter_.assign(static_cast<std::size_t>(np), 0);
  std::size_t total = 0;
  for (int s = 0; s < np; ++s) {
    const auto us = static_cast<std::size_t>(s);
    serve_start_[us] = total;
    total += incoming[us].size();
    expect_scatter_[us] = incoming[us].size();
  }
  serve_start_[static_cast<std::size_t>(np)] = total;
  serve_linear_.reserve(total);
  for (int s = 0; s < np; ++s) {
    const auto& ids = incoming[static_cast<std::size_t>(s)];
    serve_linear_.insert(serve_linear_.end(), ids.begin(), ids.end());
  }

  if (cfg.enabled) init_hybrid(ctx, requested, cfg);
}

void Schedule::init_hybrid(
    msg::Context& ctx, const std::vector<std::vector<dist::Index>>& requested,
    const SkewConfig& cfg) {
  const int np = ctx.nprocs();
  const int me = ctx.rank();

  // 1. Serve-load histogram: one allgather of my serve count.  Every rank
  // sees the same vector, so the go/no-go decision is SPMD-uniform.
  const auto loads =
      ctx.allgather(static_cast<std::int64_t>(serve_linear_.size()));
  std::int64_t load_total = 0;
  std::int64_t load_max = 0;
  for (const std::int64_t l : loads) {
    load_total += l;
    load_max = l > load_max ? l : load_max;
  }
  if (load_total > 0) {
    const double mean =
        static_cast<double>(load_total) / static_cast<double>(np);
    serve_skew_ = static_cast<double>(load_max) / mean;
  }
  if (serve_skew_ <= cfg.threshold) return;

  // 2. Heavy election: each owner marks its served elements whose fan-in
  // (number of requesting ranks; serve slices are per-source deduplicated,
  // so multiplicity across slices IS the fan-in) reaches the bar.
  const std::size_t min_fan =
      cfg.min_fan > 0
          ? cfg.min_fan
          : std::max<std::size_t>(2, static_cast<std::size_t>(np) / 2);
  std::unordered_map<dist::Index, std::size_t> fan;
  for (const dist::Index lin : serve_linear_) ++fan[lin];
  std::vector<dist::Index> my_heavy;
  for (const auto& [lin, c] : fan) {
    if (c >= min_fan) my_heavy.push_back(lin);
  }
  std::sort(my_heavy.begin(), my_heavy.end());

  // 3. Announcement: one plan-time allgather of the sorted lists builds
  // the machine-wide heavy stream.  Every id has exactly one owner, so
  // slots never collide.
  auto all_heavy = ctx.allgather_vec(my_heavy);
  heavy_owner_start_.assign(static_cast<std::size_t>(np) + 1, 0);
  std::unordered_map<dist::Index, std::size_t> slot_of;
  for (int r = 0; r < np; ++r) {
    const auto ur = static_cast<std::size_t>(r);
    heavy_owner_start_[ur] = n_heavy_;
    for (const dist::Index id : all_heavy[ur]) {
      slot_of.emplace(id, n_heavy_++);
    }
  }
  heavy_owner_start_[static_cast<std::size_t>(np)] = n_heavy_;
  if (n_heavy_ == 0) return;  // skewed, but nothing fans wide enough
  hybrid_ = true;
  heavy_serve_linear_ = std::move(my_heavy);

  // 4. Owner-side carve-out: heavy elements leave my serve slices (their
  // values travel once in the allgather instead of once per requester).
  std::vector<dist::Index> new_serve;
  new_serve.reserve(serve_linear_.size());
  std::vector<std::size_t> new_start(static_cast<std::size_t>(np) + 1, 0);
  const auto heavy_mine = [&](dist::Index lin) {
    return std::binary_search(heavy_serve_linear_.begin(),
                              heavy_serve_linear_.end(), lin);
  };
  for (int s = 0; s < np; ++s) {
    const auto us = static_cast<std::size_t>(s);
    new_start[us] = new_serve.size();
    for (std::size_t k = serve_start_[us]; k < serve_start_[us + 1]; ++k) {
      if (!heavy_mine(serve_linear_[k])) new_serve.push_back(serve_linear_[k]);
    }
    expect_scatter_[us] = new_serve.size() - new_start[us];
  }
  new_start[static_cast<std::size_t>(np)] = new_serve.size();
  serve_linear_ = std::move(new_serve);
  serve_start_ = std::move(new_start);

  // 5. Requester-side carve-out: occurrences of heavy elements move from
  // the per-peer fan-out lists to the replicated stream; the surviving
  // unique ids are re-indexed densely in their original (shipped) order,
  // which is exactly the order the owner's filtered serve slice keeps.
  n_unique_offproc_ = 0;
  for (int p = 0; p < np; ++p) {
    const auto up = static_cast<std::size_t>(p);
    const auto& req = requested[up];
    std::vector<std::size_t> remap(req.size(), 0);
    std::vector<char> is_heavy(req.size(), 0);
    std::size_t kept = 0;
    for (std::size_t i = 0; i < req.size(); ++i) {
      if (const auto it = slot_of.find(req[i]); it != slot_of.end()) {
        remap[i] = it->second;
        is_heavy[i] = 1;
      } else {
        remap[i] = kept++;
      }
    }
    req_unique_counts_[up] = kept;
    n_unique_offproc_ += kept;
    auto& occ = occ_unique_index_[up];
    auto& pos = occ_positions_[up];
    std::vector<std::size_t> light_occ;
    std::vector<std::size_t> light_pos;
    light_occ.reserve(occ.size());
    light_pos.reserve(pos.size());
    for (std::size_t k = 0; k < occ.size(); ++k) {
      if (is_heavy[occ[k]]) {
        heavy_occ_slot_.push_back(remap[occ[k]]);
        heavy_occ_pos_.push_back(pos[k]);
      } else {
        light_occ.push_back(remap[occ[k]]);
        light_pos.push_back(pos[k]);
      }
    }
    occ = std::move(light_occ);
    pos = std::move(light_pos);
  }

  // 6. My scatter_add partial layout: the sorted set of slots I touch.
  touched_slots_ = heavy_occ_slot_;
  std::sort(touched_slots_.begin(), touched_slots_.end());
  touched_slots_.erase(
      std::unique(touched_slots_.begin(), touched_slots_.end()),
      touched_slots_.end());
  heavy_occ_touch_.resize(heavy_occ_slot_.size());
  for (std::size_t k = 0; k < heavy_occ_slot_.size(); ++k) {
    heavy_occ_touch_[k] = static_cast<std::size_t>(
        std::lower_bound(touched_slots_.begin(), touched_slots_.end(),
                         heavy_occ_slot_[k]) -
        touched_slots_.begin());
  }

  // 7. Announce the touched sets so owners can build their reduction
  // lists: for my k-th heavy element, the rank-ascending (rank, index)
  // pairs into the allgathered partial vectors.  Rank order fixes the
  // reduction order deterministically.
  std::vector<std::int64_t> touched64(touched_slots_.begin(),
                                      touched_slots_.end());
  const auto all_touched = ctx.allgather_vec(std::move(touched64));
  owner_reduce_start_.assign(heavy_serve_linear_.size() + 1, 0);
  for (std::size_t k = 0; k < heavy_serve_linear_.size(); ++k) {
    owner_reduce_start_[k] = owner_reduce_rank_.size();
    const auto slot = static_cast<std::int64_t>(
        heavy_owner_start_[static_cast<std::size_t>(me)] + k);
    for (int r = 0; r < np; ++r) {
      const auto& tl = all_touched[static_cast<std::size_t>(r)];
      const auto it = std::lower_bound(tl.begin(), tl.end(), slot);
      if (it != tl.end() && *it == slot) {
        owner_reduce_rank_.push_back(r);
        owner_reduce_idx_.push_back(
            static_cast<std::size_t>(it - tl.begin()));
      }
    }
  }
  owner_reduce_start_[heavy_serve_linear_.size()] = owner_reduce_rank_.size();
}

const Schedule::Binding& Schedule::bind(const rt::DistArrayBase& a) const {
  const dist::DistHandle& d = a.dist_handle();
  // Multi-array binding cache: most recently used first.  The hot path is
  // an integer compare and a pointer compare against the front entry.
  for (std::size_t k = 0; k < bindings_.size(); ++k) {
    Binding& b = bindings_[k];
    if (b.array_serial == a.serial() && b.dist == d) {
      ++binding_hits_;
      if (k != 0) {
        // Rotate (not swap) the hit to the front so the tail keeps true
        // recency order and pop_back always evicts the least recent.
        std::rotate(bindings_.begin(), bindings_.begin() + k,
                    bindings_.begin() + k + 1);
      }
      return bindings_.front();
    }
  }
  // Identity hit against the inspected target is the expected case; a
  // descriptor-only swap to an equivalent spelling still binds through
  // the mapping-level comparison.  Only a genuinely different mapping is
  // rejected.
  if (d != target_ && (!d || !d->same_mapping(*target_))) {
    throw std::logic_error(
        "Schedule: array " + a.name() +
        "'s distribution does not match the inspected target (was the "
        "array redistributed since the inspector ran?)");
  }
  // Halo-satisfied reads address the array's ghost storage, so its
  // overlap description must be the inspected one -- one pointer compare
  // thanks to interning.
  if (!halo_linear_.empty() && a.halo_spec() != halo_) {
    throw std::logic_error(
        "Schedule: array " + a.name() +
        "'s halo spec does not match the one this schedule was inspected "
        "with");
  }
  ++binding_misses_;
  // An array holds exactly one descriptor at a time, so on a miss every
  // cached binding with this serial is stale (the array was redistributed
  // to a different -- mapping-equivalent -- handle since it was
  // translated).  Left in place, each DISTRIBUTE flip would leak one of
  // the kBindingCapacity slots until LRU eviction and could squeeze out
  // live bindings of other arrays; purge them now.
  std::erase_if(bindings_, [&](const Binding& sb) {
    if (sb.array_serial != a.serial()) return false;
    binding_budget_.remove(binding_bytes(sb));  // stale drop, not eviction
    return true;
  });
  Binding b;
  b.array_serial = a.serial();
  b.dist = d;
  b.serve_off.resize(serve_linear_.size());
  for (std::size_t k = 0; k < serve_linear_.size(); ++k) {
    b.serve_off[k] = static_cast<std::size_t>(
        a.storage_offset(dom_.delinearize(serve_linear_[k])));
  }
  b.local_off.resize(local_linear_.size());
  for (std::size_t k = 0; k < local_linear_.size(); ++k) {
    b.local_off[k] = static_cast<std::size_t>(
        a.storage_offset(dom_.delinearize(local_linear_[k])));
  }
  b.halo_off.resize(halo_linear_.size());
  for (std::size_t k = 0; k < halo_linear_.size(); ++k) {
    b.halo_off[k] = static_cast<std::size_t>(
        a.halo_offset(dom_.delinearize(halo_linear_[k])));
  }
  b.heavy_off.resize(heavy_serve_linear_.size());
  for (std::size_t k = 0; k < heavy_serve_linear_.size(); ++k) {
    b.heavy_off[k] = static_cast<std::size_t>(
        a.storage_offset(dom_.delinearize(heavy_serve_linear_[k])));
  }
  // Capacity backstop plus byte ceiling, both from the LRU tail.  The
  // incoming binding always lands even if it alone exceeds the ceiling:
  // an executor cannot run without its current binding.
  const std::size_t nb = binding_bytes(b);
  while (!bindings_.empty() && (bindings_.size() >= kBindingCapacity ||
                                binding_budget_.would_exceed(nb))) {
    binding_budget_.evict(binding_bytes(bindings_.back()));
    bindings_.pop_back();
  }
  binding_budget_.add(nb);
  bindings_.insert(bindings_.begin(), std::move(b));
  return bindings_.front();
}

void Schedule::set_binding_budget(std::size_t max_bytes) {
  binding_budget_.set_max_bytes(max_bytes);
  while (bindings_.size() > 1 && binding_budget_.over()) {
    binding_budget_.evict(binding_bytes(bindings_.back()));
    bindings_.pop_back();
  }
}

}  // namespace vf::parti
