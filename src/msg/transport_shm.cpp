// The shared-memory zero-copy transport.
//
// All ranks of the virtual machine are threads of one process, so a
// counted exchange needs no frame serialization at all: begin() PUBLISHES
// a {tag, pointer, size} record per non-empty destination (the pointer
// aliases the sender's ExchangeLane send buffer), and the receiver's
// end() waits for the record, hands the peer's buffer directly to the
// PeerConsumer (which unpacks straight out of it -- for a halo exchange
// that makes the whole transfer two memcpys: pack and unpack), then ACKS
// the record so the sender may reuse its buffer.  end() finally waits for
// the acks of its own publications before returning, which is what makes
// the lane's send buffers safe to repack after end().
//
// Deadlock freedom: every rank first drains ALL its inbound payloads
// (consuming and acking; this never blocks on the rank's own outbound
// acks), and only then waits for its own publications to be acked.
// Since every rank eventually consumes everything inbound, every
// publication is eventually acked.
//
// Failure containment: each per-destination endpoint registers its
// (mutex, condvar) with the machine's AbortFence at construction, every
// wait re-checks fence.aborted() and throws the structured RankAbort,
// and waits honour the recv watchdog exactly like Mailbox::pop -- a rank
// blocked mid-exchange past the deadline trips the fence with a
// machine-wide deadlock report.  The exchange itself is not subject to
// fault injection (there are no frames to corrupt); all other traffic
// still rides Machine::deliver, so fault-fuzz remains meaningful under
// this transport.
#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

#include "vf/msg/context.hpp"
#include "vf/msg/transport.hpp"

namespace vf::msg {

namespace {

class ShmTransport final : public Transport {
 public:
  ShmTransport(AbortFence& fence, int nprocs)
      : fence_(&fence), np_(nprocs) {
    eps_.reserve(static_cast<std::size_t>(nprocs));
    for (int i = 0; i < nprocs; ++i) {
      auto ep = std::make_unique<Endpoint>();
      ep->from.resize(static_cast<std::size_t>(nprocs));
      fence_->register_wake(&ep->mu, &ep->cv);
      eps_.push_back(std::move(ep));
    }
  }

  [[nodiscard]] TransportKind kind() const noexcept override {
    return TransportKind::SharedMemory;
  }
  [[nodiscard]] const char* name() const noexcept override { return "shm"; }

  void begin(Context& ctx, ExchangeLane& lane, int tag) override {
    const int me = ctx.rank();
    auto& st = ctx.stats();
    for (int d = 0; d < np_; ++d) {
      if (d == me) continue;
      const auto payload = lane.send_bytes(d);
      if (payload.empty()) continue;
      // Same accounting as a framed send: the bytes move between ranks
      // either way, only the mechanism differs.
      st.data_messages++;
      st.data_bytes += payload.size();
      st.add_peer(d, payload.size());
      Endpoint& ep = *eps_[static_cast<std::size_t>(d)];
      {
        std::lock_guard lk(ep.mu);
        ep.from[static_cast<std::size_t>(me)].push_back(
            Pub{tag, payload.data(), payload.size(), false, false});
      }
      ep.cv.notify_all();
    }
  }

  void end(Context& ctx, ExchangeLane& lane, int tag,
           PeerConsumer& consume) override {
    const int me = ctx.rank();
    try {
      // Phase 1: drain inbound -- wait for each expected publication,
      // unpack directly from the peer's buffer, ack it.
      Endpoint& mine = *eps_[static_cast<std::size_t>(me)];
      for (int s = 0; s < np_; ++s) {
        if (s == me) continue;
        const std::size_t expected = lane.recv_bytes(s).size();
        if (expected == 0) continue;
        const Pub pub = wait_published(mine, me, s, tag);
        // wait_published marked the record busy under the lock; this
        // guard clears it however the iteration exits, so a publisher
        // withdrawing its buffers never waits on a dead consumer.  The
        // consumed ack (which releases the sender's buffer for reuse) is
        // only given once consume() returned.
        ReleaseGuard rel{&mine, s, tag, false};
        if (pub.size != expected) {
          const std::string why =
              "shm transport: payload from rank " + std::to_string(s) +
              " (tag " + std::to_string(tag) + ") is " +
              std::to_string(pub.size) + " bytes, expected " +
              std::to_string(expected) +
              " (pre-agreed counts disagree between the two sides)";
          fence_->trip(me, why);
          throw RankAbort(me, why);
        }
        consume.consume(s, std::span<const std::byte>(pub.data, pub.size));
        rel.ok = true;
      }
      // Phase 2: wait for the acks of my own publications (and retire
      // them), so the caller may repack the lane's send buffers.
      for (int d = 0; d < np_; ++d) {
        if (d == me) continue;
        if (lane.send_bytes(d).empty()) continue;
        wait_acked(*eps_[static_cast<std::size_t>(d)], me, d, tag);
      }
    } catch (...) {
      // Aborting out of a half-done exchange: the caller is about to
      // unwind and destroy the lane, but peers may still be reading (or
      // about to read) the send buffers my publications point into.
      // Reclaim them first; peers left waiting unwind via the fence.
      withdraw(me, tag);
      throw;
    }
  }

  /// See Transport::withdraw.  Erases rank me's records of `tag` that no
  /// consumer holds, and waits out in-flight consumers (bounded: the
  /// consumer's ReleaseGuard clears busy even if consume() throws).
  void withdraw(int me, int tag) noexcept override {
    for (int d = 0; d < np_; ++d) {
      if (d == me) continue;
      Endpoint& ep = *eps_[static_cast<std::size_t>(d)];
      std::unique_lock lk(ep.mu);
      for (;;) {
        auto& pubs = ep.from[static_cast<std::size_t>(me)];
        const auto it = find_tag(pubs, tag);
        if (it == pubs.end()) break;  // never published or already retired
        if (!it->busy) {
          pubs.erase(it);
          break;
        }
        ep.cv.wait(lk);  // memcpy in flight; the guard will wake us
      }
    }
  }

  void reset() override {
    for (auto& ep : eps_) {
      std::lock_guard lk(ep->mu);
      for (auto& pubs : ep->from) pubs.clear();
    }
  }

 private:
  /// One published payload in flight on a (src, dest) link.
  struct Pub {
    int tag;
    const std::byte* data;
    std::size_t size;
    bool consumed;  ///< receiver finished reading; sender may reuse buffer
    bool busy;      ///< receiver is reading RIGHT NOW; withdraw must wait
  };

  /// Per-destination rendezvous point; all state for payloads INTO rank d
  /// (including the consumed acks its senders wait on) is guarded by
  /// eps_[d].mu, so no operation ever holds two locks.
  struct alignas(64) Endpoint {
    std::mutex mu;
    std::condition_variable cv;
    std::vector<std::vector<Pub>> from;  ///< indexed by source rank
  };

  static std::vector<Pub>::iterator find_tag(std::vector<Pub>& pubs,
                                             int tag) {
    return std::find_if(pubs.begin(), pubs.end(),
                        [&](const Pub& p) { return p.tag == tag; });
  }

  /// Releases one inbound publication record when the consuming scope
  /// exits: clears busy always (so an aborting publisher's withdraw never
  /// waits on a consumer that died), sets consumed only if the consume
  /// completed (`ok`), and wakes anyone waiting on the endpoint.
  struct ReleaseGuard {
    Endpoint* ep;
    int src;
    int tag;
    bool ok;
    ~ReleaseGuard() {
      {
        std::lock_guard lk(ep->mu);
        auto& pubs = ep->from[static_cast<std::size_t>(src)];
        const auto it = find_tag(pubs, tag);
        if (it != pubs.end()) {
          it->busy = false;
          if (ok) it->consumed = true;
        }
      }
      ep->cv.notify_all();
    }
  };

  /// Blocks until rank `src` has published `tag` into `ep` (rank me's own
  /// endpoint), marks the record busy under the lock, and returns a copy.
  /// The caller MUST pair this with a ReleaseGuard immediately: a record
  /// left busy would deadlock the publisher's withdraw.  Fence- and
  /// watchdog-aware, modeled on Mailbox::pop.
  Pub wait_published(Endpoint& ep, int me, int src, int tag) {
    return wait_on(ep, me, src, tag, [&]() -> const Pub* {
      const auto it = find_tag(ep.from[static_cast<std::size_t>(src)], tag);
      if (it == ep.from[static_cast<std::size_t>(src)].end()) return nullptr;
      it->busy = true;  // idempotent; only ever taken on the success path
      return &*it;
    });
  }

  /// Blocks until rank `dest` has consumed my publication of `tag`, then
  /// retires the record.
  void wait_acked(Endpoint& ep, int me, int dest, int tag) {
    (void)wait_on(ep, me, dest, tag, [&]() -> const Pub* {
      auto& pubs = ep.from[static_cast<std::size_t>(me)];
      const auto it = find_tag(pubs, tag);
      return it != pubs.end() && it->consumed ? &*it : nullptr;
    });
    std::lock_guard lk(ep.mu);
    auto& pubs = ep.from[static_cast<std::size_t>(me)];
    const auto it = find_tag(pubs, tag);
    if (it != pubs.end()) pubs.erase(it);
  }

  /// The shared wait loop: blocks on ep.cv until the `ready` predicate
  /// returns a record (called with ep.mu held; the record is copied out
  /// under the lock), the fence trips, or the watchdog expires.  `peer`
  /// is what this rank reports itself blocked on in deadlock reports.
  /// A successful ready() is ALWAYS followed by returning its record,
  /// never by a throw -- wait_published's predicate marks the record
  /// busy, and a busy record that is never handed to a ReleaseGuard
  /// would deadlock the publisher's withdraw.
  template <typename Ready>
  Pub wait_on(Endpoint& ep, int me, int peer, int tag, Ready&& ready) {
    struct BlockedScope {
      AbortFence* f;
      int r;
      ~BlockedScope() { f->leave(r); }
    } blocked{fence_, me};
    fence_->enter_recv(me, peer, tag);

    const auto watchdog = fence_->watchdog();
    const auto deadline = std::chrono::steady_clock::now() + watchdog;

    std::unique_lock lk(ep.mu);
    for (;;) {
      if (const Pub* p = ready()) return *p;
      if (fence_->aborted()) throw fence_->make_abort();
      if (watchdog.count() > 0) {
        if (ep.cv.wait_until(lk, deadline) == std::cv_status::timeout) {
          if (ready() != nullptr) continue;  // arrived on the deadline
          if (fence_->aborted()) throw fence_->make_abort();
          const std::string report = fence_->deadlock_report(me);
          lk.unlock();  // trip() wakes ep.cv too; avoid self-deadlock
          fence_->trip(me, report);
          throw RankAbort(me, report);
        }
      } else {
        ep.cv.wait(lk);
      }
    }
  }

  AbortFence* fence_;
  int np_;
  std::vector<std::unique_ptr<Endpoint>> eps_;
};

}  // namespace

std::unique_ptr<Transport> make_shm_transport(AbortFence& fence, int nprocs) {
  return std::make_unique<ShmTransport>(fence, nprocs);
}

}  // namespace vf::msg
