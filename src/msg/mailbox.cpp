#include "vf/msg/mailbox.hpp"

#include <algorithm>

namespace vf::msg {

namespace {
bool matches(const Message& m, int src, int tag) {
  return (src == kAnySource || m.src == src) && m.tag == tag;
}
}  // namespace

void Mailbox::push(Message m) {
  {
    std::lock_guard lk(mu_);
    q_.push_back(std::move(m));
  }
  cv_.notify_all();
}

Message Mailbox::pop(int src, int tag) {
  std::unique_lock lk(mu_);
  for (;;) {
    auto it = std::find_if(q_.begin(), q_.end(), [&](const Message& m) {
      return matches(m, src, tag);
    });
    if (it != q_.end()) {
      Message m = std::move(*it);
      q_.erase(it);
      return m;
    }
    cv_.wait(lk);
  }
}

bool Mailbox::try_pop(int src, int tag, Message& out) {
  std::lock_guard lk(mu_);
  auto it = std::find_if(q_.begin(), q_.end(), [&](const Message& m) {
    return matches(m, src, tag);
  });
  if (it == q_.end()) return false;
  out = std::move(*it);
  q_.erase(it);
  return true;
}

std::size_t Mailbox::size() const {
  std::lock_guard lk(mu_);
  return q_.size();
}

}  // namespace vf::msg
