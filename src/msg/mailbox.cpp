#include "vf/msg/mailbox.hpp"

#include <algorithm>
#include <chrono>
#include <string>

namespace vf::msg {

namespace {
bool matches(const Message& m, int src, int tag) {
  return (src == kAnySource || m.src == src) && m.tag == tag;
}
}  // namespace

Mailbox::Mailbox(AbortFence* fence, int rank, int nprocs)
    : fence_(fence),
      rank_(rank),
      expected_seq_(static_cast<std::size_t>(nprocs), 0) {
  if (fence_ != nullptr) fence_->register_wake(&mu_, &cv_);
}

void Mailbox::push(Message m) {
  std::string violation;
  const int link_src = m.src;
  {
    std::lock_guard lk(mu_);
    if (m.seq != 0 && !expected_seq_.empty()) {
      std::uint64_t& expected = expected_seq_[static_cast<std::size_t>(m.src)];
      if (m.seq != expected + 1) {
        violation =
            "frame integrity: link " + std::to_string(m.src) + " -> " +
            std::to_string(rank_) + " (tag " + std::to_string(m.tag) +
            ") delivered seq " + std::to_string(m.seq) + ", expected " +
            std::to_string(expected + 1) +
            (m.seq <= expected ? " (replayed/duplicated frame)"
                               : " (frame(s) lost or delayed in flight)");
      } else {
        expected = m.seq;
      }
    }
    if (violation.empty()) q_.push_back(std::move(m));
  }
  if (!violation.empty()) {
    // The delivery endpoint detected the violation, but it runs on the
    // sending rank's thread: that rank originates the abort.
    if (fence_ != nullptr) fence_->trip(link_src, violation);
    throw RankAbort(link_src, violation);
  }
  cv_.notify_all();
}

void Mailbox::verify_frame(const Message& m) const {
  if (!m.checked || frame_checksum(m.payload) == m.checksum) return;
  const std::string violation =
      "frame integrity: checksum mismatch on message from rank " +
      std::to_string(m.src) + " tag " + std::to_string(m.tag) + " (" +
      std::to_string(m.payload.size()) +
      " bytes): payload corrupted or truncated in flight";
  if (fence_ != nullptr) fence_->trip(rank_, violation);
  throw RankAbort(rank_, violation);
}

Message Mailbox::pop(int src, int tag) {
  // Blocked-state bookkeeping for the watchdog's deadlock report; cleared
  // on every exit path (including the abort throws).
  struct BlockedScope {
    AbortFence* f;
    int r;
    ~BlockedScope() {
      if (f != nullptr) f->leave(r);
    }
  } blocked{fence_, rank_};
  if (fence_ != nullptr) fence_->enter_recv(rank_, src, tag);

  const auto watchdog = fence_ != nullptr ? fence_->watchdog()
                                          : std::chrono::milliseconds(0);
  const auto deadline = std::chrono::steady_clock::now() + watchdog;

  std::unique_lock lk(mu_);
  for (;;) {
    if (fence_ != nullptr && fence_->aborted()) throw fence_->make_abort();
    auto it = std::find_if(q_.begin(), q_.end(), [&](const Message& m) {
      return matches(m, src, tag);
    });
    if (it != q_.end()) {
      Message m = std::move(*it);
      q_.erase(it);
      lk.unlock();
      verify_frame(m);
      return m;
    }
    if (watchdog.count() > 0) {
      if (cv_.wait_until(lk, deadline) == std::cv_status::timeout &&
          std::none_of(q_.begin(), q_.end(), [&](const Message& m) {
            return matches(m, src, tag);
          })) {
        if (fence_->aborted()) throw fence_->make_abort();
        const std::string report = fence_->deadlock_report(rank_);
        lk.unlock();  // trip() wakes this mailbox too; avoid self-deadlock
        fence_->trip(rank_, report);
        throw RankAbort(rank_, report);
      }
    } else {
      cv_.wait(lk);
    }
  }
}

bool Mailbox::try_pop(int src, int tag, Message& out) {
  std::unique_lock lk(mu_);
  auto it = std::find_if(q_.begin(), q_.end(), [&](const Message& m) {
    return matches(m, src, tag);
  });
  if (it == q_.end()) return false;
  Message m = std::move(*it);
  q_.erase(it);
  lk.unlock();
  verify_frame(m);
  out = std::move(m);
  return true;
}

std::size_t Mailbox::size() const {
  std::lock_guard lk(mu_);
  return q_.size();
}

void Mailbox::reset_links() {
  std::lock_guard lk(mu_);
  q_.clear();
  std::fill(expected_seq_.begin(), expected_seq_.end(), 0);
}

}  // namespace vf::msg
