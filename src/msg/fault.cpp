#include "vf/msg/fault.hpp"

#include <chrono>
#include <sstream>

namespace vf::msg {

namespace {
std::int64_t steady_now_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
}  // namespace

const char* to_string(FaultKind k) {
  switch (k) {
    case FaultKind::None:
      return "none";
    case FaultKind::Drop:
      return "drop";
    case FaultKind::Delay:
      return "delay";
    case FaultKind::Duplicate:
      return "duplicate";
    case FaultKind::Truncate:
      return "truncate";
    case FaultKind::BitFlip:
      return "bit-flip";
  }
  return "?";
}

std::uint64_t frame_checksum(std::span<const std::byte> payload) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV offset basis
  for (const std::byte b : payload) {
    h ^= static_cast<std::uint64_t>(b);
    h *= 0x100000001b3ULL;  // FNV prime
  }
  return h;
}

std::string FailureReport::to_string() const {
  std::ostringstream os;
  if (!any_failed) return "all ranks completed";
  os << "origin rank " << origin_rank << ": " << reason;
  for (const RankFailure& r : ranks) {
    os << "\n  rank " << r.rank << ": ";
    if (!r.failed) {
      os << "completed";
    } else if (r.abort_origin >= 0 && r.abort_origin != r.rank) {
      os << "aborted by rank " << r.abort_origin;
    } else {
      os << r.what;
    }
  }
  return os.str();
}

AbortFence::AbortFence(int nprocs)
    : blocked_(static_cast<std::size_t>(nprocs)) {}

bool AbortFence::trip(int origin, std::string reason) {
  {
    std::lock_guard lk(mu_);
    if (aborted_.load(std::memory_order_relaxed)) return false;
    origin_ = origin;
    reason_ = std::move(reason);
    aborted_.store(true, std::memory_order_release);
    trips_.fetch_add(1, std::memory_order_relaxed);
  }
  // Wake every registered blocking primitive.  Locking (then releasing)
  // the primitive's mutex before notifying closes the check-then-wait
  // race: a waiter that read aborted == false under its lock is either
  // already in wait() when we acquire that lock, or will re-check after
  // we release it.
  for (auto& [mu, cv] : wakes_) {
    { std::lock_guard lk(*mu); }
    cv->notify_all();
  }
  return true;
}

RankAbort AbortFence::make_abort() const {
  std::lock_guard lk(mu_);
  return RankAbort(origin_, reason_);
}

int AbortFence::origin() const {
  std::lock_guard lk(mu_);
  return origin_;
}

std::string AbortFence::reason() const {
  std::lock_guard lk(mu_);
  return reason_;
}

void AbortFence::reset() {
  std::lock_guard lk(mu_);
  aborted_.store(false, std::memory_order_release);
  origin_ = -1;
  reason_.clear();
}

void AbortFence::register_wake(std::mutex* mu, std::condition_variable* cv) {
  std::lock_guard lk(mu_);
  wakes_.emplace_back(mu, cv);
}

void AbortFence::enter_recv(int rank, int src, int tag) noexcept {
  auto& b = blocked_[static_cast<std::size_t>(rank)];
  b.src.store(src, std::memory_order_relaxed);
  b.tag.store(tag, std::memory_order_relaxed);
  b.since_ms.store(steady_now_ms(), std::memory_order_relaxed);
  b.kind.store(static_cast<int>(BlockKind::Recv), std::memory_order_release);
}

void AbortFence::enter_barrier(int rank, std::uint64_t gen) noexcept {
  auto& b = blocked_[static_cast<std::size_t>(rank)];
  b.gen.store(gen, std::memory_order_relaxed);
  b.since_ms.store(steady_now_ms(), std::memory_order_relaxed);
  b.kind.store(static_cast<int>(BlockKind::Barrier),
               std::memory_order_release);
}

void AbortFence::leave(int rank) noexcept {
  blocked_[static_cast<std::size_t>(rank)].kind.store(
      static_cast<int>(BlockKind::None), std::memory_order_release);
}

std::string AbortFence::deadlock_report(int expired_rank) const {
  const std::int64_t now = steady_now_ms();
  std::ostringstream os;
  os << "recv watchdog expired on rank " << expired_rank << " after "
     << watchdog().count() << " ms; blocked-on snapshot:";
  for (std::size_t r = 0; r < blocked_.size(); ++r) {
    const auto& b = blocked_[r];
    os << "\n  rank " << r << ": ";
    switch (static_cast<BlockKind>(b.kind.load(std::memory_order_acquire))) {
      case BlockKind::None:
        os << "running (not blocked)";
        break;
      case BlockKind::Recv:
        os << "blocked in recv(src="
           << b.src.load(std::memory_order_relaxed)
           << ", tag=" << b.tag.load(std::memory_order_relaxed) << ") for "
           << now - b.since_ms.load(std::memory_order_relaxed) << " ms";
        break;
      case BlockKind::Barrier:
        os << "blocked in barrier (generation "
           << b.gen.load(std::memory_order_relaxed) << ") for "
           << now - b.since_ms.load(std::memory_order_relaxed) << " ms";
        break;
    }
  }
  const std::uint64_t parked = parked_.load(std::memory_order_relaxed);
  if (parked != 0) {
    os << "\n  " << parked << " frame(s) parked in flight by fault injection";
  }
  return os.str();
}

}  // namespace vf::msg
