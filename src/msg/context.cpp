#include "vf/msg/context.hpp"

#include <stdexcept>

namespace vf::msg {

void Context::send_bytes(int dest, int tag, std::span<const std::byte> payload) {
  if (dest < 0 || dest >= nprocs()) {
    throw std::out_of_range("send_bytes: bad destination rank");
  }
  auto& st = stats();
  st.data_messages++;
  st.data_bytes += payload.size();
  m_->mailbox(dest).push(
      Message{rank_, tag, {payload.begin(), payload.end()}});
}

void Context::send_ctl_bytes(int dest, int tag,
                             std::span<const std::byte> payload) {
  if (dest < 0 || dest >= nprocs()) {
    throw std::out_of_range("send_ctl_bytes: bad destination rank");
  }
  auto& st = stats();
  st.ctl_messages++;
  st.ctl_bytes += payload.size();
  m_->mailbox(dest).push(
      Message{rank_, tag, {payload.begin(), payload.end()}});
}

std::vector<std::byte> Context::recv_bytes(int src, int tag) {
  return m_->mailbox(rank_).pop(src, tag).payload;
}

Message Context::recv_msg(int src, int tag) {
  return m_->mailbox(rank_).pop(src, tag);
}

void Context::barrier() {
  stats().collectives++;
  m_->barrier_wait();
}

}  // namespace vf::msg
