#include "vf/msg/context.hpp"

#include <stdexcept>

namespace vf::msg {

void Context::send_bytes(int dest, int tag, std::span<const std::byte> payload) {
  if (dest < 0 || dest >= nprocs()) {
    throw std::out_of_range("send_bytes: bad destination rank");
  }
  auto& st = stats();
  st.data_messages++;
  st.data_bytes += payload.size();
  st.add_peer(dest, payload.size());
  m_->deliver(rank_, dest, tag, /*ctl=*/false,
              {payload.begin(), payload.end()});
}

void Context::send_ctl_bytes(int dest, int tag,
                             std::span<const std::byte> payload) {
  if (dest < 0 || dest >= nprocs()) {
    throw std::out_of_range("send_ctl_bytes: bad destination rank");
  }
  auto& st = stats();
  st.ctl_messages++;
  st.ctl_bytes += payload.size();
  m_->deliver(rank_, dest, tag, /*ctl=*/true,
              {payload.begin(), payload.end()});
}

std::vector<std::byte> Context::recv_bytes(int src, int tag) {
  return m_->mailbox(rank_).pop(src, tag).payload;
}

void Context::recv_bytes_into(int src, int tag, std::span<std::byte> dst) {
  const Message m = m_->mailbox(rank_).pop(src, tag);
  if (m.payload.size() != dst.size()) {
    throw std::runtime_error(
        "recv_bytes_into: payload size does not match the pre-agreed count");
  }
  if (!dst.empty()) std::memcpy(dst.data(), m.payload.data(), dst.size());
}

namespace {

/// The default end_exchange consumer: fills lane.recv(peer).  When the
/// transport already received in place (mailbox: `bytes` IS the lane's
/// recv buffer) the copy is skipped; when `bytes` aliases the peer's send
/// buffer (shared memory) this memcpy is the entire receive-side cost.
class LaneFillConsumer final : public PeerConsumer {
 public:
  explicit LaneFillConsumer(ExchangeLane& lane) : lane_(&lane) {}
  void consume(int peer, std::span<const std::byte> bytes) override {
    const auto dst = lane_->recv_bytes(peer);
    if (bytes.data() == dst.data() || bytes.empty()) return;
    std::memcpy(dst.data(), bytes.data(), bytes.size());
  }

 private:
  ExchangeLane* lane_;
};

}  // namespace

int Context::begin_exchange(ExchangeLane& lane) {
  if (lane.peers() != nprocs()) {
    throw std::invalid_argument(
        "begin_exchange: lane was prepared for a different rank count");
  }
  const int tag = next_coll_tag();
  stats().collectives++;
  if (lockstep_on()) {
    auto& c = lockstep_counts();
    const auto np = static_cast<std::size_t>(nprocs());
    for (std::size_t p = 0; p < np; ++p) {
      c[p] = lane.send_bytes(static_cast<int>(p)).size();
      c[np + p] = lane.recv_bytes(static_cast<int>(p)).size();
    }
    lockstep_record_counted(LockstepOp::Exchange, tag, 1);
  }
  m_->transport().begin(*this, lane, tag);
  // The lane now has publications in flight: if this rank unwinds before
  // end_exchange (split-phase window), the lane's destructor withdraws
  // them so no peer reads freed memory.
  lane.note_published(&m_->transport(), rank_, tag);
  return tag;
}

void Context::end_exchange(ExchangeLane& lane, int tag) {
  LaneFillConsumer fill(lane);
  end_exchange_impl(lane, tag, fill);
}

void Context::end_exchange_impl(ExchangeLane& lane, int tag,
                                PeerConsumer& consume) {
  // Local slot: delivered by consume, never through the transport.  Both
  // sides of the local transfer are pinned by the same inspector product,
  // so a size disagreement is a caller bug, not a peer protocol violation.
  {
    const auto src = lane.send_bytes(rank_);
    const auto dst = lane.recv_bytes(rank_);
    if (src.size() != dst.size()) {
      throw std::logic_error("end_exchange: local send/recv sizes disagree");
    }
    if (!src.empty()) consume.consume(rank_, src);
  }
  m_->transport().end(*this, lane, tag, consume);
  // All publications acked and retired; nothing left for the lane's
  // destructor to withdraw.  (On the throw path the transport's own
  // abort handling already reclaimed them; the destructor's repeat
  // withdraw is an idempotent no-op.)
  lane.note_retired();
}

void Context::alltoallv_known_into(ExchangeLane& lane) {
  end_exchange(lane, begin_exchange(lane));
}

Message Context::recv_msg(int src, int tag) {
  return m_->mailbox(rank_).pop(src, tag);
}

void Context::barrier() {
  // The collectives bump happens inside barrier_wait, under the barrier
  // lock: it is the one counter a rank touches while a barrier-bracketed
  // machine-wide reset_stats()/total_stats() may run on another thread.
  if (lockstep_on()) lockstep_record(LockstepOp::Barrier, 0, 0);
  m_->barrier_wait(rank_);
}

void Context::abort(const std::string& reason) {
  m_->fence().trip(rank_, reason);
  throw RankAbort(rank_, reason);
}

}  // namespace vf::msg
