#include "vf/msg/context.hpp"

#include <stdexcept>

namespace vf::msg {

void Context::send_bytes(int dest, int tag, std::span<const std::byte> payload) {
  if (dest < 0 || dest >= nprocs()) {
    throw std::out_of_range("send_bytes: bad destination rank");
  }
  auto& st = stats();
  st.data_messages++;
  st.data_bytes += payload.size();
  m_->deliver(rank_, dest, tag, /*ctl=*/false,
              {payload.begin(), payload.end()});
}

void Context::send_ctl_bytes(int dest, int tag,
                             std::span<const std::byte> payload) {
  if (dest < 0 || dest >= nprocs()) {
    throw std::out_of_range("send_ctl_bytes: bad destination rank");
  }
  auto& st = stats();
  st.ctl_messages++;
  st.ctl_bytes += payload.size();
  m_->deliver(rank_, dest, tag, /*ctl=*/true,
              {payload.begin(), payload.end()});
}

std::vector<std::byte> Context::recv_bytes(int src, int tag) {
  return m_->mailbox(rank_).pop(src, tag).payload;
}

void Context::recv_bytes_into(int src, int tag, std::span<std::byte> dst) {
  const Message m = m_->mailbox(rank_).pop(src, tag);
  if (m.payload.size() != dst.size()) {
    throw std::runtime_error(
        "recv_bytes_into: payload size does not match the pre-agreed count");
  }
  if (!dst.empty()) std::memcpy(dst.data(), m.payload.data(), dst.size());
}

void Context::alltoallv_known_into(ExchangeLane& lane) {
  const int np = nprocs();
  if (lane.peers() != np) {
    throw std::invalid_argument(
        "alltoallv_known_into: lane was prepared for a different rank count");
  }
  const int tag = next_coll_tag();
  stats().collectives++;
  // Local slot: delivered by copy, never through the network.  Both sides
  // of the local transfer are pinned by the same inspector product, so a
  // size disagreement is a caller bug, not a peer protocol violation.
  {
    const auto src = lane.send_bytes(rank_);
    const auto dst = lane.recv_bytes(rank_);
    if (src.size() != dst.size()) {
      throw std::logic_error(
          "alltoallv_known_into: local send/recv sizes disagree");
    }
    if (!src.empty()) std::memcpy(dst.data(), src.data(), src.size());
  }
  for (int d = 0; d < np; ++d) {
    if (d == rank_) continue;
    const auto payload = lane.send_bytes(d);
    if (payload.empty()) continue;
    send_bytes(d, tag, payload);
  }
  for (int s = 0; s < np; ++s) {
    if (s == rank_) continue;
    const auto dst = lane.recv_bytes(s);
    if (dst.empty()) continue;
    recv_bytes_into(s, tag, dst);
  }
}

Message Context::recv_msg(int src, int tag) {
  return m_->mailbox(rank_).pop(src, tag);
}

void Context::barrier() {
  stats().collectives++;
  m_->barrier_wait(rank_);
}

void Context::abort(const std::string& reason) {
  m_->fence().trip(rank_, reason);
  throw RankAbort(rank_, reason);
}

}  // namespace vf::msg
