#include "vf/msg/spmd.hpp"

#include <exception>
#include <thread>
#include <vector>

namespace vf::msg {

void run_spmd(Machine& m, const std::function<void(Context&)>& body) {
  const int np = m.nprocs();
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(np));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(np));
  for (int r = 0; r < np; ++r) {
    threads.emplace_back([&, r] {
      try {
        Context ctx(m, r);
        body(ctx);
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  for (auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }
}

CommStats run_spmd(int nprocs, const std::function<void(Context&)>& body,
                   CostModel cm) {
  Machine m(nprocs, cm);
  run_spmd(m, body);
  return m.total_stats();
}

}  // namespace vf::msg
