#include "vf/msg/spmd.hpp"

#include <exception>
#include <thread>
#include <vector>

namespace vf::msg {

void run_spmd(Machine& m, const std::function<void(Context&)>& body) {
  const int np = m.nprocs();
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(np));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(np));
  for (int r = 0; r < np; ++r) {
    threads.emplace_back([&, r] {
      try {
        Context ctx(m, r);
        body(ctx);
      } catch (const RankAbort&) {
        // Fence already tripped by whoever originated this abort.
        errors[static_cast<std::size_t>(r)] = std::current_exception();
      } catch (const std::exception& e) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
        m.fence().trip(r, e.what());
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
        m.fence().trip(r, "unknown exception escaped the SPMD body");
      }
    });
  }
  for (auto& t : threads) t.join();

  FailureReport report;
  report.ranks.resize(static_cast<std::size_t>(np));
  for (int r = 0; r < np; ++r) {
    RankFailure& f = report.ranks[static_cast<std::size_t>(r)];
    f.rank = r;
    const auto& e = errors[static_cast<std::size_t>(r)];
    if (!e) continue;
    f.failed = true;
    report.any_failed = true;
    try {
      std::rethrow_exception(e);
    } catch (const RankAbort& a) {
      f.abort_origin = a.origin_rank;
      f.what = a.what();
    } catch (const std::exception& ex) {
      f.what = ex.what();
    } catch (...) {
      f.what = "unknown exception";
    }
  }
  const bool tripped = m.fence().aborted();
  if (tripped) {
    report.origin_rank = m.fence().origin();
    report.reason = m.fence().reason();
  } else if (report.any_failed) {
    // Defensive: every throw path trips the fence, but if one ever does
    // not, still name the first failed rank.
    for (const RankFailure& f : report.ranks) {
      if (f.failed) {
        report.origin_rank = f.rank;
        report.reason = f.what;
        break;
      }
    }
  }
  m.set_last_failure_report(report);
  if (tripped) m.reset_failure_state();

  if (report.any_failed) {
    const auto origin = static_cast<std::size_t>(report.origin_rank);
    if (report.origin_rank >= 0 && errors[origin]) {
      std::rethrow_exception(errors[origin]);
    }
    // The origin rank itself completed (it tripped the fence from another
    // rank's delivery path and kept running): surface the fence reason.
    throw RankAbort(report.origin_rank, report.reason);
  }
}

CommStats run_spmd(int nprocs, const std::function<void(Context&)>& body,
                   CostModel cm) {
  Machine m(nprocs, cm);
  run_spmd(m, body);
  return m.total_stats();
}

}  // namespace vf::msg
