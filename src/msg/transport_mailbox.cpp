// The default frame-serializing transport: counted-exchange payloads
// travel as ordinary data messages through Machine::deliver, so they are
// framed with per-link sequence numbers, checksummed whenever a fault
// plan is active, subject to fault injection, and received through the
// fence-checked, watchdog-aware Mailbox::pop -- exactly the path
// alltoallv_known_into used before the transport layer existed.
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <string_view>

#include "vf/msg/context.hpp"
#include "vf/msg/transport.hpp"

namespace vf::msg {

namespace {

class MailboxTransport final : public Transport {
 public:
  [[nodiscard]] TransportKind kind() const noexcept override {
    return TransportKind::Mailbox;
  }
  [[nodiscard]] const char* name() const noexcept override {
    return "mailbox";
  }

  void begin(Context& ctx, ExchangeLane& lane, int tag) override {
    const int np = ctx.nprocs();
    const int me = ctx.rank();
    for (int d = 0; d < np; ++d) {
      if (d == me) continue;
      const auto payload = lane.send_bytes(d);
      if (payload.empty()) continue;
      ctx.send_bytes(d, tag, payload);
    }
  }

  void end(Context& ctx, ExchangeLane& lane, int tag,
           PeerConsumer& consume) override {
    const int np = ctx.nprocs();
    const int me = ctx.rank();
    for (int s = 0; s < np; ++s) {
      if (s == me) continue;
      const auto dst = lane.recv_bytes(s);
      if (dst.empty()) continue;
      ctx.recv_bytes_into(s, tag, dst);
      consume.consume(s, dst);
    }
  }
};

}  // namespace

const char* to_string(TransportKind k) noexcept {
  switch (k) {
    case TransportKind::Mailbox:
      return "mailbox";
    case TransportKind::SharedMemory:
      return "shm";
  }
  return "?";
}

TransportKind default_transport_kind() {
  const char* v = std::getenv("VF_TRANSPORT");
  if (v == nullptr || *v == '\0') return TransportKind::Mailbox;
  const std::string_view s(v);
  if (s == "mailbox") return TransportKind::Mailbox;
  if (s == "shm" || s == "shared" || s == "shared-memory" ||
      s == "shared_memory") {
    return TransportKind::SharedMemory;
  }
  throw std::invalid_argument(
      "VF_TRANSPORT: unknown transport '" + std::string(s) +
      "' (expected 'mailbox' or 'shm')");
}

std::unique_ptr<Transport> make_shm_transport(AbortFence& fence, int nprocs);

std::unique_ptr<Transport> make_transport(TransportKind k, AbortFence& fence,
                                          int nprocs) {
  switch (k) {
    case TransportKind::Mailbox:
      return std::make_unique<MailboxTransport>();
    case TransportKind::SharedMemory:
      return make_shm_transport(fence, nprocs);
  }
  throw std::invalid_argument("make_transport: unknown transport kind");
}

}  // namespace vf::msg
