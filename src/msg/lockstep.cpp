#include "vf/msg/lockstep.hpp"

#include <stdexcept>

namespace vf::msg {

const char* to_string(LockstepOp op) {
  switch (op) {
    case LockstepOp::None:
      return "none";
    case LockstepOp::Barrier:
      return "barrier";
    case LockstepOp::Broadcast:
      return "broadcast";
    case LockstepOp::Allreduce:
      return "allreduce";
    case LockstepOp::Allgather:
      return "allgather";
    case LockstepOp::Alltoallv:
      return "alltoallv";
    case LockstepOp::Exchange:
      return "exchange";
  }
  return "?";
}

LockstepChecker::LockstepChecker(int nprocs, AbortFence* fence)
    : nprocs_(nprocs), fence_(fence) {}

void LockstepChecker::set_enabled(bool on) {
  if (on && ranks_.empty()) {
    // One-time arming allocation; nothing allocates per op afterwards.
    std::vector<RankState> rs(static_cast<std::size_t>(nprocs_));
    for (auto& r : rs) {
      r.ring = std::vector<Slot>(kRing);
      r.counts = std::vector<std::atomic<std::uint64_t>>(
          kRing * 2 * static_cast<std::size_t>(nprocs_));
    }
    ranks_ = std::move(rs);
  }
  reset();
  enabled_.store(on, std::memory_order_release);
}

void LockstepChecker::reset() {
  for (auto& r : ranks_) {
    r.nops.store(0, std::memory_order_relaxed);
    r.chain = 0;
    r.barrier_chain = 0;
    r.barrier_ops = 0;
    for (auto& s : r.ring) s.seq.store(kNoSlot, std::memory_order_relaxed);
    for (auto& c : r.counts) c.store(0, std::memory_order_relaxed);
  }
}

std::uint64_t LockstepChecker::ops(int rank) const {
  if (ranks_.empty()) return 0;
  return ranks_[static_cast<std::size_t>(rank)].nops.load(
      std::memory_order_acquire);
}

std::uint64_t LockstepChecker::chain(int rank) const {
  // Owner-thread or quiescent-machine use only (tests call it after
  // run_spmd joined every rank).
  if (ranks_.empty()) return 0;
  return ranks_[static_cast<std::size_t>(rank)].chain;
}

std::string LockstepChecker::describe(LockstepOp op, int tag,
                                      std::uint32_t elem, std::uint64_t note,
                                      std::uint64_t seq) const {
  std::string s = "{collective #";
  s += std::to_string(seq);
  s += ": ";
  s += to_string(op);
  s += " tag=";
  s += std::to_string(tag);
  if (elem != 0) {
    s += " elem=";
    s += std::to_string(elem);
  }
  if (note != 0) {
    s += " note=";
    s += std::to_string(note);
  }
  s += "}";
  return s;
}

void LockstepChecker::fail(int rank, int peer, std::uint64_t seq,
                           std::string mine, std::string theirs,
                           std::string why) {
  mismatches_.fetch_add(1, std::memory_order_relaxed);
  std::string reason = "lockstep mismatch at collective #" +
                       std::to_string(seq) + ": rank " +
                       std::to_string(rank) + " recorded " + mine +
                       " but rank " + std::to_string(peer) + " recorded " +
                       theirs + (why.empty() ? "" : " -- " + why);
  fence_->trip(rank, reason);
  throw LockstepMismatch(rank, peer, seq, std::move(mine), std::move(theirs),
                         reason);
}

void LockstepChecker::record(int rank, LockstepOp op, int tag,
                             std::uint32_t elem_size, std::uint64_t note,
                             std::span<const std::uint64_t> out_bytes,
                             std::span<const std::uint64_t> in_bytes) {
  const auto np = static_cast<std::size_t>(nprocs_);
  RankState& me = ranks_[static_cast<std::size_t>(rank)];
  const std::uint64_t seq = me.nops.load(std::memory_order_relaxed);
  const bool counted = !out_bytes.empty();

  // Signature: everything SPMD-uniform about the op.  Per-peer counts are
  // NOT folded (each rank legitimately holds a different row of the
  // count matrix); they are published raw and checked pairwise below.
  std::uint64_t sig = mix64(static_cast<std::uint64_t>(op));
  sig = mix64(sig ^ static_cast<std::uint64_t>(static_cast<std::uint32_t>(tag)));
  sig = mix64(sig ^ elem_size);
  sig = mix64(sig ^ note);

  // Publish my slot: invalidate, write fields, release the sequence
  // number, then advance the op counter.  Peers that read a slot
  // mid-write see seq == kNoSlot (or a stale seq) and skip it.
  Slot& slot = me.ring[seq % kRing];
  slot.seq.store(kNoSlot, std::memory_order_release);
  slot.sig.store(sig, std::memory_order_relaxed);
  slot.op.store(static_cast<int>(op), std::memory_order_relaxed);
  slot.tag.store(tag, std::memory_order_relaxed);
  slot.elem.store(elem_size, std::memory_order_relaxed);
  slot.note.store(note, std::memory_order_relaxed);
  slot.counted.store(counted, std::memory_order_relaxed);
  if (counted) {
    const std::size_t base = (seq % kRing) * 2 * np;
    for (std::size_t p = 0; p < np; ++p) {
      me.counts[base + p].store(out_bytes[p], std::memory_order_relaxed);
      me.counts[base + np + p].store(in_bytes[p], std::memory_order_relaxed);
    }
  }
  slot.seq.store(seq, std::memory_order_release);
  me.chain = mix64(me.chain ^ sig);
  me.nops.store(seq + 1, std::memory_order_release);

  // Cross-check: because every rank publishes before comparing, for any
  // diverging pair at op `seq` the later-publishing rank is guaranteed
  // to see the earlier one's slot -- detection is deterministic, not a
  // race.  A slot whose seq does not match is a peer that has not
  // reached (or has long passed) this op; the barrier chain compare
  // backstops that case.
  for (std::size_t q = 0; q < np; ++q) {
    if (static_cast<int>(q) == rank) continue;
    RankState& peer = ranks_[q];
    Slot& ps = peer.ring[seq % kRing];
    if (ps.seq.load(std::memory_order_acquire) != seq) continue;
    const std::uint64_t p_sig = ps.sig.load(std::memory_order_relaxed);
    const int p_op = ps.op.load(std::memory_order_relaxed);
    const int p_tag = ps.tag.load(std::memory_order_relaxed);
    const std::uint32_t p_elem = ps.elem.load(std::memory_order_relaxed);
    const std::uint64_t p_note = ps.note.load(std::memory_order_relaxed);
    const bool p_counted = ps.counted.load(std::memory_order_relaxed);
    std::uint64_t p_out_to_me = 0;
    std::uint64_t p_in_from_me = 0;
    if (p_counted) {
      const std::size_t base = (seq % kRing) * 2 * np;
      p_out_to_me = peer.counts[base + static_cast<std::size_t>(rank)].load(
          std::memory_order_relaxed);
      p_in_from_me =
          peer.counts[base + np + static_cast<std::size_t>(rank)].load(
              std::memory_order_relaxed);
    }
    if (ps.seq.load(std::memory_order_acquire) != seq) continue;  // torn

    if (p_sig != sig || p_counted != counted) {
      fail(rank, static_cast<int>(q), seq,
           describe(op, tag, elem_size, note, seq),
           describe(static_cast<LockstepOp>(p_op), p_tag, p_elem, p_note,
                    seq),
           "collective order or geometry diverged");
    }
    if (counted) {
      if (p_out_to_me != in_bytes[q]) {
        fail(rank, static_cast<int>(q), seq,
             describe(op, tag, elem_size, note, seq) + " expecting " +
                 std::to_string(in_bytes[q]) + " bytes from rank " +
                 std::to_string(q),
             describe(op, p_tag, p_elem, p_note, seq) + " sending " +
                 std::to_string(p_out_to_me) + " bytes to rank " +
                 std::to_string(rank),
             "pre-agreed counts diverged");
      }
      if (p_in_from_me != out_bytes[q]) {
        fail(rank, static_cast<int>(q), seq,
             describe(op, tag, elem_size, note, seq) + " sending " +
                 std::to_string(out_bytes[q]) + " bytes to rank " +
                 std::to_string(q),
             describe(op, p_tag, p_elem, p_note, seq) + " expecting " +
                 std::to_string(p_in_from_me) + " bytes from rank " +
                 std::to_string(rank),
             "pre-agreed counts diverged");
      }
    }
  }
}

std::string LockstepChecker::stage_barrier(int rank, bool last) {
  // Caller holds the machine's barrier mutex: the plain chain/ops reads
  // and barrier_* writes below are ordered by it.
  RankState& me = ranks_[static_cast<std::size_t>(rank)];
  me.barrier_chain = me.chain;
  me.barrier_ops = me.nops.load(std::memory_order_relaxed);
  if (!last) return {};
  const RankState& r0 = ranks_.front();
  for (std::size_t q = 1; q < ranks_.size(); ++q) {
    const RankState& rq = ranks_[q];
    if (rq.barrier_ops != r0.barrier_ops ||
        rq.barrier_chain != r0.barrier_chain) {
      mismatches_.fetch_add(1, std::memory_order_relaxed);
      return "lockstep chain divergence at barrier: rank 0 arrived with " +
             std::to_string(r0.barrier_ops) + " collectives (chain " +
             std::to_string(r0.barrier_chain) + ") but rank " +
             std::to_string(q) + " arrived with " +
             std::to_string(rq.barrier_ops) + " (chain " +
             std::to_string(rq.barrier_chain) +
             "): the ranks executed different collective sequences";
    }
  }
  return {};
}

}  // namespace vf::msg
