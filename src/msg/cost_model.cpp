#include "vf/msg/cost_model.hpp"

#include <sstream>

namespace vf::msg {

std::string CommStats::to_string() const {
  std::ostringstream os;
  os << "data: " << data_messages << " msgs / " << data_bytes << " B, ctl: "
     << ctl_messages << " msgs / " << ctl_bytes << " B, collectives: "
     << collectives;
  std::uint64_t peers = 0;
  std::uint64_t max_peer = 0;
  for (const auto b : peer_bytes) {
    if (b > 0) ++peers;
    max_peer = b > max_peer ? b : max_peer;
  }
  if (peers > 0) {
    os << ", peers: " << peers << " (max " << max_peer << " B)";
  }
  return os.str();
}

}  // namespace vf::msg
