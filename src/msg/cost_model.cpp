#include "vf/msg/cost_model.hpp"

#include <sstream>

namespace vf::msg {

std::string CommStats::to_string() const {
  std::ostringstream os;
  os << "data: " << data_messages << " msgs / " << data_bytes << " B, ctl: "
     << ctl_messages << " msgs / " << ctl_bytes << " B, collectives: "
     << collectives;
  return os.str();
}

}  // namespace vf::msg
