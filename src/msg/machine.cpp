#include "vf/msg/machine.hpp"

#include <algorithm>
#include <stdexcept>

namespace vf::msg {

Machine::Machine(int nprocs, CostModel cm) : nprocs_(nprocs), cm_(cm) {
  if (nprocs < 1) throw std::invalid_argument("Machine: nprocs must be >= 1");
  boxes_.reserve(static_cast<std::size_t>(nprocs));
  for (int i = 0; i < nprocs; ++i) boxes_.push_back(std::make_unique<Mailbox>());
  stats_.resize(static_cast<std::size_t>(nprocs));
}

Mailbox& Machine::mailbox(int rank) {
  return *boxes_.at(static_cast<std::size_t>(rank));
}

CommStats& Machine::stats(int rank) {
  return stats_.at(static_cast<std::size_t>(rank)).s;
}

CommStats Machine::total_stats() const {
  CommStats t;
  for (const auto& s : stats_) t += s.s;
  return t;
}

double Machine::max_rank_modeled_us() const {
  double mx = 0.0;
  for (const auto& s : stats_) mx = std::max(mx, s.s.modeled_us(cm_));
  return mx;
}

void Machine::reset_stats() {
  for (auto& s : stats_) s.s = CommStats{};
}

void Machine::barrier_wait() {
  std::unique_lock lk(barrier_mu_);
  const std::uint64_t gen = barrier_gen_;
  if (++barrier_count_ == nprocs_) {
    barrier_count_ = 0;
    ++barrier_gen_;
    barrier_cv_.notify_all();
    return;
  }
  barrier_cv_.wait(lk, [&] { return barrier_gen_ != gen; });
}

}  // namespace vf::msg
