#include "vf/msg/machine.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <utility>

namespace vf::msg {

namespace {
int checked_nprocs(int nprocs) {
  if (nprocs < 1) throw std::invalid_argument("Machine: nprocs must be >= 1");
  return nprocs;
}

bool lockstep_env_default() {
  const char* v = std::getenv("VF_LOCKSTEP");
  return v != nullptr && *v != '\0' && std::strcmp(v, "0") != 0 &&
         std::strcmp(v, "off") != 0 && std::strcmp(v, "OFF") != 0;
}
}  // namespace

Machine::Machine(int nprocs, CostModel cm, TransportKind transport)
    : nprocs_(checked_nprocs(nprocs)),
      cm_(cm),
      fence_(nprocs),
      lockstep_(nprocs, &fence_) {
  if (lockstep_env_default()) lockstep_.set_enabled(true);
  boxes_.reserve(static_cast<std::size_t>(nprocs));
  for (int i = 0; i < nprocs; ++i) {
    boxes_.push_back(std::make_unique<Mailbox>(&fence_, i, nprocs));
  }
  stats_.resize(static_cast<std::size_t>(nprocs));
  link_seq_.assign(
      static_cast<std::size_t>(nprocs) * static_cast<std::size_t>(nprocs), 0);
  fence_.register_wake(&barrier_mu_, &barrier_cv_);
  mailbox_transport_ = make_transport(TransportKind::Mailbox, fence_, nprocs);
  shm_transport_ = make_transport(TransportKind::SharedMemory, fence_, nprocs);
  set_transport(transport);
}

void Machine::set_transport(TransportKind k) noexcept {
  active_transport_ = k == TransportKind::SharedMemory
                          ? shm_transport_.get()
                          : mailbox_transport_.get();
}

Mailbox& Machine::mailbox(int rank) {
  return *boxes_.at(static_cast<std::size_t>(rank));
}

CommStats& Machine::stats(int rank) {
  return stats_.at(static_cast<std::size_t>(rank)).s;
}

CommStats Machine::total_stats() const {
  std::lock_guard lk(barrier_mu_);
  CommStats t;
  for (const auto& s : stats_) t += s.s;
  return t;
}

double Machine::max_rank_modeled_us() const {
  std::lock_guard lk(barrier_mu_);
  double mx = 0.0;
  for (const auto& s : stats_) mx = std::max(mx, s.s.modeled_us(cm_));
  return mx;
}

void Machine::reset_stats() {
  std::lock_guard lk(barrier_mu_);
  for (auto& s : stats_) s.s = CommStats{};
}

void Machine::deliver(int src, int dest, int tag, bool ctl,
                      std::vector<std::byte> payload) {
  std::uint64_t& link =
      link_seq_[static_cast<std::size_t>(src) *
                    static_cast<std::size_t>(nprocs_) +
                static_cast<std::size_t>(dest)];
  Message m{src, tag, std::move(payload), ++link};
  if (ctl || plan_.active()) {
    m.checksum = frame_checksum(m.payload);
    m.checked = true;
  }

  const std::uint64_t n = deliveries_.fetch_add(1, std::memory_order_relaxed);
  FaultKind inject = FaultKind::None;
  if (plan_.active()) {
    if (plan_.rate > 0.0) {
      const std::uint64_t key =
          (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src)) << 32) |
          static_cast<std::uint64_t>(static_cast<std::uint32_t>(dest));
      const std::uint64_t h = mix64(plan_.seed ^ mix64(key) ^ m.seq);
      if (static_cast<double>(h >> 11) * 0x1.0p-53 < plan_.rate) {
        inject = plan_.kind;
      }
    } else if (n == plan_.nth) {
      inject = plan_.kind;
    }
  }
  // Mutating faults need at least one payload byte to act on; injecting
  // them on an empty frame degrades to losing it.
  if (m.payload.empty() &&
      (inject == FaultKind::Truncate || inject == FaultKind::BitFlip)) {
    inject = FaultKind::Drop;
  }
  if (inject != FaultKind::None) {
    faults_injected_.fetch_add(1, std::memory_order_relaxed);
  }

  switch (inject) {
    case FaultKind::Drop:
      return;  // the link sequence gap surfaces at the next delivery,
               // or via the watchdog if this was the last frame
    case FaultKind::Delay: {
      {
        std::lock_guard lk(parked_mu_);
        parked_.push_back(ParkedFrame{dest, std::move(m)});
      }
      fence_.note_parked(1);
      return;
    }
    case FaultKind::Duplicate: {
      Message dup = m;  // same seq: the second push is a detected replay
      mailbox(dest).push(std::move(dup));
      mailbox(dest).push(std::move(m));
      return;
    }
    case FaultKind::Truncate:
      // checksum above covers the original bytes, so the receiver sees
      // the mismatch
      m.payload.resize(m.payload.size() / 2);
      break;
    case FaultKind::BitFlip: {
      const std::uint64_t pos =
          mix64(plan_.seed ^ m.seq ^ 0x5bd1e995ULL) % (m.payload.size() * 8);
      m.payload[pos / 8] ^= static_cast<std::byte>(1u << (pos % 8));
      break;
    }
    case FaultKind::None:
      break;
  }
  mailbox(dest).push(std::move(m));
}

void Machine::barrier_wait(int rank) {
  std::unique_lock lk(barrier_mu_);
  if (fence_.aborted()) throw fence_.make_abort();
  // The barrier's own stats bump lives under barrier_mu_: it is the one
  // counter a rank increments while a barrier-bracketed machine-wide
  // reset_stats()/total_stats() may be running on another rank's thread
  // (the measurement idiom), so the same lock must order both.
  if (rank >= 0) stats_[static_cast<std::size_t>(rank)].s.collectives++;
  const std::uint64_t gen = barrier_gen_;
  const bool lockstep = rank >= 0 && lockstep_.enabled();
  if (++barrier_count_ == nprocs_) {
    if (lockstep) {
      // Piggybacked chain compare: the completing arriver sees every
      // rank's staged chain (all stores ordered by barrier_mu_).
      std::string divergence = lockstep_.stage_barrier(rank, true);
      if (!divergence.empty()) {
        --barrier_count_;  // withdraw: peers unwind via the fence
        lk.unlock();       // trip() wakes barrier_cv_; avoid self-deadlock
        fence_.trip(rank, divergence);
        throw LockstepMismatch(rank, -1, lockstep_.ops(rank), {}, {},
                               divergence);
      }
    }
    barrier_count_ = 0;
    ++barrier_gen_;
    barrier_cv_.notify_all();
    return;
  }
  if (lockstep) (void)lockstep_.stage_barrier(rank, false);
  if (rank >= 0) fence_.enter_barrier(rank, gen);
  struct Leave {
    AbortFence* f;
    int r;
    ~Leave() {
      if (r >= 0) f->leave(r);
    }
  } leave{&fence_, rank};

  const auto watchdog = fence_.watchdog();
  const auto deadline = std::chrono::steady_clock::now() + watchdog;
  for (;;) {
    if (barrier_gen_ != gen) return;
    if (fence_.aborted()) {
      // Withdraw this rank's arrival so the barrier count stays coherent
      // for reset_failure_state() / the next run.
      --barrier_count_;
      throw fence_.make_abort();
    }
    if (watchdog.count() > 0) {
      if (barrier_cv_.wait_until(lk, deadline) == std::cv_status::timeout &&
          barrier_gen_ == gen && !fence_.aborted()) {
        --barrier_count_;
        const int origin = rank >= 0 ? rank : 0;
        const std::string report = fence_.deadlock_report(origin);
        lk.unlock();  // trip() wakes barrier_cv_ too; avoid self-deadlock
        fence_.trip(origin, report);
        throw RankAbort(origin, report);
      }
    } else {
      barrier_cv_.wait(lk);
    }
  }
}

void Machine::set_fault_plan(const FaultPlan& plan) noexcept {
  plan_ = plan;
  deliveries_.store(0, std::memory_order_relaxed);
  faults_injected_.store(0, std::memory_order_relaxed);
}

void Machine::reset_failure_state() {
  fence_.reset();
  for (auto& b : boxes_) b->reset_links();
  std::fill(link_seq_.begin(), link_seq_.end(), 0);
  {
    std::lock_guard lk(parked_mu_);
    parked_.clear();
  }
  fence_.clear_parked();
  {
    std::lock_guard lk(barrier_mu_);
    barrier_count_ = 0;
  }
  mailbox_transport_->reset();
  shm_transport_->reset();
  lockstep_.reset();
}

FailureReport Machine::last_failure_report() const {
  std::lock_guard lk(report_mu_);
  return report_;
}

void Machine::set_last_failure_report(FailureReport r) {
  std::lock_guard lk(report_mu_);
  report_ = std::move(r);
}

}  // namespace vf::msg
