// E14 -- lifecycle soak: the amr_front churn scenario (sweeping front +
// jittered DISTRIBUTE every step) run long enough that an unbounded
// registry or cache would visibly grow.  With Env::sweep on a cadence
// and byte budgets armed on the halo-plan and redistribution-plan
// caches, resident bytes must plateau: the CI gate asserts the
// second-half peak stays within 25% of the first-half peak, the
// second-half growth slope is flat, and the budgets demonstrably evict
// (a vacuously-large budget would pass the plateau check without
// exercising the LRU at all).
//
// Counters:
//   ns_per_step           -- wall time per soak step (churn + exchange +
//                            stencil), the warm-replay regression guard;
//   resident_peak_bytes   -- max sampled registry+cache residency, rank 0;
//   resident_final_bytes  -- last sample, rank 0;
//   plateau_ratio         -- second-half peak / first-half peak, rank 0;
//   slope_bytes_per_step  -- least-squares slope of the second half;
//   halo_evictions / plan_evictions / registry_swept -- machine totals;
//   halo_plan_hit_rate    -- some reuse must survive the churn (the
//                            per-step jitter caps this near 0.14, so
//                            the CI floor is 0.1, not bench_halo's 0.5).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <mutex>
#include <vector>

#include "vf/apps/soak.hpp"
#include "vf/msg/spmd.hpp"

namespace {

using namespace vf;  // NOLINT(google-build-using-namespace)

void BM_SoakLifecycle(benchmark::State& state) {
  const int steps = static_cast<int>(state.range(0));
  constexpr int kProcs = 4;

  apps::SoakConfig cfg;
  cfg.n = 16;
  cfg.steps = steps;
  cfg.sweep_every = 64;
  cfg.sample_every = std::max(1, steps / 64);
  cfg.redist_every = 1;
  cfg.halo_budget_bytes = std::size_t{64} << 10;
  cfg.plan_budget_bytes = std::size_t{256} << 10;

  apps::SoakResult root;
  std::mutex mu;
  double secs = 0.0;
  for (auto _ : state) {
    msg::Machine machine(kProcs);
    const auto t0 = std::chrono::steady_clock::now();
    msg::run_spmd(machine, [&](msg::Context& ctx) {
      const apps::SoakResult res = apps::run_soak(ctx, cfg);
      if (ctx.rank() == 0) {
        std::lock_guard lk(mu);
        root = res;
      }
    });
    secs = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0)
               .count();
  }

  std::uint64_t first_half_peak = 0;
  std::uint64_t second_half_peak = 0;
  for (std::size_t k = 0; k < root.samples.size(); ++k) {
    std::uint64_t& peak = k < root.samples.size() / 2 ? first_half_peak
                                                      : second_half_peak;
    peak = std::max(peak, root.samples[k].registry_bytes +
                              root.samples[k].cache_bytes);
  }

  state.counters["ns_per_step"] = secs * 1e9 / steps;
  state.counters["resident_peak_bytes"] =
      static_cast<double>(root.peak_resident_bytes);
  state.counters["resident_final_bytes"] =
      static_cast<double>(root.final_resident_bytes);
  state.counters["plateau_ratio"] =
      first_half_peak == 0 ? 0.0
                           : static_cast<double>(second_half_peak) /
                                 static_cast<double>(first_half_peak);
  state.counters["slope_bytes_per_step"] = root.bytes_per_step_slope;
  state.counters["sweeps"] = static_cast<double>(root.sweeps);
  state.counters["registry_swept"] =
      static_cast<double>(root.registry_swept);
  state.counters["registry_pinned"] =
      static_cast<double>(root.registry_pinned);
  state.counters["halo_evictions"] =
      static_cast<double>(root.halo_evictions);
  state.counters["plan_evictions"] =
      static_cast<double>(root.plan_evictions);
  state.counters["halo_plan_hit_rate"] =
      root.halo_plan_hits + root.halo_plan_misses == 0
          ? 0.0
          : static_cast<double>(root.halo_plan_hits) /
                static_cast<double>(root.halo_plan_hits +
                                    root.halo_plan_misses);
}

}  // namespace

BENCHMARK(BM_SoakLifecycle)
    ->ArgNames({"steps"})
    ->Args({10000})
    ->Unit(benchmark::kSecond)
    ->Iterations(1);
