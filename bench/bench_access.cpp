// E9 -- access functions and overlap areas (Section 3.2.1): local access
// through loc_map is O(1); non-local access is worth batching.  Three
// measurements:
//   * LocalAccess: at() on owned elements (ns/element);
//   * OverlapStencil: a stencil step with one bulk overlap exchange;
//   * ElementwiseRemote: the same boundary data fetched through
//     per-element schedules -- one message per element, the cost the
//     overlap-area descriptor component exists to avoid.
#include <benchmark/benchmark.h>

#include "vf/msg/spmd.hpp"
#include "vf/parti/schedule.hpp"
#include "vf/rt/dist_array.hpp"

namespace {

using namespace vf;  // NOLINT(google-build-using-namespace)
using dist::Index;
using dist::IndexDomain;
using dist::IndexVec;

void BM_LocalAccess(benchmark::State& state) {
  msg::Machine machine(1);
  msg::Context ctx(machine, 0);
  rt::Env env(ctx);
  const Index n = 512;
  rt::DistArray<double> a(env, {.name = "A",
                                .domain = IndexDomain::of_extents({n, n}),
                                .dynamic = true,
                                .initial = {{dist::col(), dist::block()}}});
  a.fill(1.0);
  double sum = 0.0;
  for (auto _ : state) {
    sum = 0.0;
    for (Index j = 1; j <= n; ++j) {
      for (Index i = 1; i <= n; ++i) {
        sum += a.at({i, j});
      }
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * n * n);
}

void BM_OverlapStencil(benchmark::State& state) {
  constexpr int kProcs = 4;
  constexpr Index kN = 256;
  const msg::CostModel cm{};
  msg::CommStats stats;
  for (auto _ : state) {
    msg::Machine machine(kProcs, cm);
    msg::run_spmd(machine, [&](msg::Context& ctx) {
      rt::Env env(ctx);
      rt::DistArray<double> a(env,
                              {.name = "A",
                               .domain = IndexDomain::of_extents({kN, kN}),
                               .dynamic = true,
                               .initial = {{dist::col(), dist::block()}},
                               .overlap_lo = {0, 1},
                               .overlap_hi = {0, 1}});
      a.fill(1.0);
      double acc = 0.0;
      for (int s = 0; s < 4; ++s) {
        a.exchange_overlap();
        a.for_owned([&](const IndexVec& i, double& v) {
          const double e = i[1] < kN ? a.halo({i[0], i[1] + 1}) : v;
          acc += 0.5 * (v + e);
        });
      }
      benchmark::DoNotOptimize(acc);
    });
    stats = machine.total_stats();
  }
  state.counters["data_msgs"] = static_cast<double>(stats.data_messages);
  state.counters["modeled_us"] = stats.modeled_data_us(cm);
}

void BM_ElementwiseRemote(benchmark::State& state) {
  constexpr int kProcs = 4;
  constexpr Index kN = 256;
  const msg::CostModel cm{};
  msg::CommStats stats;
  for (auto _ : state) {
    msg::Machine machine(kProcs, cm);
    msg::run_spmd(machine, [&](msg::Context& ctx) {
      rt::Env env(ctx);
      rt::DistArray<double> a(env,
                              {.name = "A",
                               .domain = IndexDomain::of_extents({kN, kN}),
                               .dynamic = true,
                               .initial = {{dist::col(), dist::block()}}});
      a.fill(1.0);
      ctx.barrier();
      if (ctx.rank() == 0) machine.reset_stats();
      ctx.barrier();
      // Fetch my right-boundary neighbours one element at a time: kN
      // single-point schedules (4 steps' worth amortized as one).
      const auto cols = a.distribution().owned_in_dim(ctx.rank(), 1);
      const Index jb = cols.back();
      double acc = 0.0;
      for (Index i = 1; i <= kN; ++i) {
        IndexVec pt{i, std::min<Index>(jb + 1, kN)};
        parti::Schedule one(ctx, a.dist_handle(), {pt});
        std::vector<double> v(1);
        one.gather(ctx, a, v);
        acc += v[0];
      }
      benchmark::DoNotOptimize(acc);
    });
    stats = machine.total_stats();
  }
  state.counters["data_msgs"] = static_cast<double>(stats.data_messages);
  state.counters["modeled_us"] = stats.modeled_data_us(cm);
}

}  // namespace

BENCHMARK(BM_LocalAccess)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_OverlapStencil)->Unit(benchmark::kMillisecond)->Iterations(2);
BENCHMARK(BM_ElementwiseRemote)->Unit(benchmark::kMillisecond)->Iterations(2);
