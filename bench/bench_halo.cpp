// E11 -- the halo-plan cache: ghost (overlap-area) exchange as a cached
// run-based plan, mirroring what E4 (bench_redistribute) shows for
// DISTRIBUTE.
//
//   cold   -- the Env's halo-plan cache is disabled: every
//             exchange_overlap re-derives its neighbour analysis and
//             pack/unpack run lists before moving a single byte (what the
//             pre-halo-subsystem runtime did on every call);
//   cached -- plans are built once per (distribution, spec) pair and
//             replayed: an exchange is memcpy runs plus one pre-counted
//             all-to-all.
//
// Two shapes:
//   halo9    -- width-2 overlap WITH corners on a (BLOCK, BLOCK) grid:
//               the 9-point stencil of Section 4, widened one plane
//               (12 messages per exchange on 2x2);
//   halorows -- width-2 overlap on (BLOCK, :) over a processor line: the
//               ghost planes are thin in the stride-1 storage dimension,
//               so every face fragments into n short runs -- the
//               run-list construction the cold path repays per call is
//               maximal while only 2 messages per rank travel.  This is
//               the configuration CI gates on (cached >= 1.5x cold via
//               ns_per_exchange).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <vector>

#include "vf/msg/spmd.hpp"
#include "vf/rt/dist_array.hpp"

namespace {

using namespace vf;  // NOLINT(google-build-using-namespace)
using dist::Index;
using dist::IndexDomain;
using dist::IndexVec;

void BM_HaloExchange(benchmark::State& state) {
  const int shape = static_cast<int>(state.range(0));
  const bool cached = state.range(1) != 0;
  const auto n = static_cast<Index>(state.range(2));
  const int nprocs = static_cast<int>(state.range(3));
  const bool watchdog = state.range(4) != 0;
  const auto transport = state.range(5) != 0 ? msg::TransportKind::SharedMemory
                                             : msg::TransportKind::Mailbox;
  const bool split = state.range(6) != 0;
  const bool lockstep = state.range(7) != 0;
  constexpr int kExchanges = 64;

  state.SetLabel(std::string(shape == 0 ? "halo9" : "halorows") +
                 (cached ? "/cached" : "/cold") + (watchdog ? "/wd" : "") +
                 (lockstep ? "/lock" : "") + "/" + msg::to_string(transport) +
                 (split ? "/split" : "/blocking"));

  msg::CommStats stats;
  // Median over iterations: the threaded transport makes whole iterations
  // outliers under host load, and the CI gate needs a robust estimate.
  std::vector<double> iter_seconds;
  std::atomic<std::uint64_t> plan_hits{0};
  std::atomic<std::uint64_t> plan_misses{0};
  std::atomic<std::uint64_t> scratch_allocs{0};
  std::uint64_t fence_trips = 0;
  std::uint64_t faults_injected = 0;
  std::uint64_t lockstep_mismatches = 0;
  for (auto _ : state) {
    msg::Machine machine(nprocs, {}, transport);
    // Armed watchdog = the containment layer's overhead configuration:
    // every blocking recv and barrier waits with a deadline instead of
    // indefinitely.  The deadline is far above any healthy exchange, so
    // a trip means a real hang; the CI gate proves the armed cached
    // replay still clearly beats the cold path.
    if (watchdog) {
      machine.set_recv_watchdog(std::chrono::milliseconds(30000));
    }
    // Armed lockstep = the divergence-checker's overhead configuration:
    // every collective folds its signature into the per-rank hash chain
    // and cross-checks its peers' rings.  A healthy loop records zero
    // mismatches, and the CI gate proves the armed cached replay still
    // clearly beats the cold path with zero scratch growth.
    if (lockstep) machine.set_lockstep_check(true);
    scratch_allocs = 0;
    std::atomic<double> secs{0.0};
    msg::run_spmd(machine, [&](msg::Context& ctx) {
      int q = 1;
      while (q * q < nprocs) ++q;  // P is a perfect square for halo9 rows
      rt::Env env(ctx, shape == 0
                           ? dist::ProcessorArray::grid(q, q)
                           : dist::ProcessorArray::line(nprocs));
      env.halo_plans().set_enabled(cached);
      rt::DistArray<double> a(
          env,
          {.name = "A",
           .domain = IndexDomain::of_extents({n, n}),
           .dynamic = true,
           .initial =
               shape == 0
                   ? dist::DistributionType{dist::block(), dist::block()}
                   : dist::DistributionType{dist::block(), dist::col()},
           .overlap_lo = {2, shape == 0 ? 2 : 0},
           .overlap_hi = {2, shape == 0 ? 2 : 0},
           .overlap_corners = shape == 0});
      a.init([](const IndexVec& i) {
        return static_cast<double>(i[0] + i[1]);
      });
      // Warmup: with the cache on this builds (and caches) the plan; the
      // cold path rebuilds it inside every timed exchange anyway.  The
      // exchange scratch is warm either way, so the timed loop must not
      // grow it (allocs_per_exchange == 0 in steady state).
      a.exchange_overlap();
      a.reset_exchange_scratch_stats();
      ctx.barrier();
      ctx.stats() = msg::CommStats{};
      const auto t0 = std::chrono::steady_clock::now();
      ctx.barrier();
      // The split rows run the identical byte movement through the
      // begin/end pair back-to-back: the delta against the blocking rows
      // is the split-phase bookkeeping itself, and under the shm
      // transport the zero-copy hand-off (no compute is overlapped here
      // -- that methodology row lives in bench_smoothing).
      for (int e = 0; e < kExchanges; ++e) {
        if (split) {
          a.begin_exchange_overlap();
          a.end_exchange_overlap();
        } else {
          a.exchange_overlap();
        }
      }
      ctx.barrier();
      if (ctx.rank() == 0) {
        secs.store(std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - t0)
                       .count());
        plan_hits.store(env.halo_plans().stats().hits);
        plan_misses.store(env.halo_plans().stats().misses);
      }
      scratch_allocs.fetch_add(a.exchange_scratch_stats().grow_allocs);
    });
    iter_seconds.push_back(secs.load());
    stats = machine.total_stats();
    fence_trips = machine.fence_trips();
    faults_injected = machine.faults_injected();
    lockstep_mismatches = machine.lockstep().mismatches();
  }

  std::sort(iter_seconds.begin(), iter_seconds.end());
  const double median = iter_seconds[iter_seconds.size() / 2];
  state.counters["ns_per_exchange"] =
      median * 1e9 / static_cast<double>(kExchanges);
  state.counters["plan_cached"] = cached ? 1 : 0;
  // Halo-plan cache traffic on rank 0 of the last run: the cached loop
  // shows hits == exchanges after the warmup's single miss.
  state.counters["halo_plan_hits"] = static_cast<double>(plan_hits.load());
  state.counters["halo_plan_misses"] =
      static_cast<double>(plan_misses.load());
  state.counters["halo_plan_hit_rate"] =
      plan_hits.load() + plan_misses.load() == 0
          ? 0.0
          : static_cast<double>(plan_hits.load()) /
                static_cast<double>(plan_hits.load() + plan_misses.load());
  state.counters["data_msgs_per_exchange"] =
      static_cast<double>(stats.data_messages) / kExchanges;
  state.counters["data_bytes_per_exchange"] =
      static_cast<double>(stats.data_bytes) / kExchanges;
  // Machine-wide scratch growth of the last iteration's timed loop:
  // zero after warmup, cold or cached (the scratch outlives the plan).
  state.counters["allocs_per_exchange"] =
      static_cast<double>(scratch_allocs.load()) /
      (static_cast<double>(kExchanges) * nprocs);
  // Containment-layer health of the last iteration: a healthy exchange
  // loop must never trip the fence or inject anything (CI-gated zeros).
  state.counters["watchdog_armed"] = watchdog ? 1 : 0;
  state.counters["fence_trips"] = static_cast<double>(fence_trips);
  state.counters["faults_injected"] = static_cast<double>(faults_injected);
  state.counters["transport_shm"] =
      transport == msg::TransportKind::SharedMemory ? 1 : 0;
  state.counters["split_phase"] = split ? 1 : 0;
  state.counters["lockstep_armed"] = lockstep ? 1 : 0;
  state.counters["lockstep_mismatches"] =
      static_cast<double>(lockstep_mismatches);
}

}  // namespace

BENCHMARK(BM_HaloExchange)
    ->ArgNames({"shape", "cached", "n", "P", "wd", "tr", "split", "lock"})
    ->ArgsProduct({{0, 1}, {0, 1}, {512, 1024}, {4}, {0}, {0}, {0}, {0}})
    // Watchdog-armed cached replays: the fence-overhead configuration the
    // CI gate compares against the cold path.
    ->ArgsProduct({{0, 1}, {1}, {512, 1024}, {4}, {1}, {0}, {0}, {0}})
    // Lockstep-armed cached replays: the divergence-checker-overhead
    // configuration (CI gates armed cached >= 1.5x cold on halorows with
    // zero mismatches and zero scratch growth).
    ->ArgsProduct({{0, 1}, {1}, {512, 1024}, {4}, {0}, {0}, {0}, {1}})
    // Transport matrix: the same cached exchange over the framed mailbox
    // and the zero-copy shared-memory transport, blocking and split-phase
    // (CI gates shm >= 1.2x mailbox on ns_per_exchange here).
    ->ArgsProduct({{0, 1}, {1}, {512}, {4, 16}, {0}, {0, 1}, {0, 1}, {0}})
    // Scale grid for the CI bench job: thin-plane rows at P in {16, 64}.
    ->ArgsProduct({{1}, {1}, {256}, {16, 64}, {0}, {0, 1}, {0, 1}, {0}})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(13);
