// Shared benchmark entry point: runs the registered benchmarks with the
// usual console output AND writes a machine-readable JSON report to
// BENCH_<name>.json in the current working directory, where <name> is the
// binary's name without its "bench_" prefix.  The JSON carries ns/op plus
// every per-benchmark counter (data message counts, bytes moved and
// modeled times from CommStats), so results can be diffed across commits.
//
// An explicit --benchmark_out=... on the command line overrides the
// default destination.
#include <benchmark/benchmark.h>

#include <cstring>
#include <iostream>
#include <string>
#include <vector>

int main(int argc, char** argv) {
  std::string name = argv[0];
  const auto slash = name.find_last_of('/');
  if (slash != std::string::npos) name = name.substr(slash + 1);
  if (name.rfind("bench_", 0) == 0) name = name.substr(6);
  const std::string out_path = "BENCH_" + name + ".json";

  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--benchmark_out=", 16) == 0) has_out = true;
  }

  std::vector<char*> args(argv, argv + argc);
  std::string out_flag = "--benchmark_out=" + out_path;
  std::string fmt_flag = "--benchmark_out_format=json";
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  int args_count = static_cast<int>(args.size());
  ::benchmark::Initialize(&args_count, args.data());
  if (::benchmark::ReportUnrecognizedArguments(args_count, args.data())) {
    return 1;
  }
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  if (!has_out) std::cout << "wrote " << out_path << "\n";
  return 0;
}
