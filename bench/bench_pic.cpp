// E3 -- the Figure 2 PIC claim: "the motion of particles during the
// simulation may lead to a severe load imbalance [under a static block
// distribution] ... a new BOUNDS array is computed and the cells
// redistributed to balance the workload" (B_BLOCK rebalancing every 10th
// iteration).
//
// Rows: rebalance period 0 (static BLOCK), 10 (Figure 2), 1 (every step --
// the over-eager ablation from DESIGN.md section 6).
// Counters:
//   mean_imbalance / max_imbalance -- per-step max/mean particle load
//   makespan_units                 -- modeled computation makespan
//   rebalances, redist_kb          -- cost side of the tradeoff
// Expected shape: period 10 cuts imbalance and makespan substantially over
// static; period 1 buys little extra balance for much more redistribution
// traffic.
// BM_PicRedistReplay isolates the DISTRIBUTE replay of that rebalancing
// loop: alternating B_BLOCK flips over a FIELD-shaped array, with the
// plan cache cold vs cached, reporting ns_per_flip and the steady-state
// allocs_per_replay_redist counter CI gates at zero.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <vector>

#include "vf/apps/pic_sim.hpp"
#include "vf/msg/spmd.hpp"
#include "vf/rt/dist_array.hpp"

namespace {

using namespace vf;  // NOLINT(google-build-using-namespace)
using dist::Index;
using dist::IndexDomain;
using dist::IndexVec;

void BM_Pic(benchmark::State& state) {
  const int period = static_cast<int>(state.range(0));
  constexpr int kProcs = 4;
  apps::PicConfig cfg;
  cfg.ncell = 200;
  cfg.npart_max = 1200;
  cfg.particles = 10000;
  cfg.steps = 50;
  cfg.rebalance_period = period;
  const msg::CostModel cm{};

  apps::PicResult result;
  msg::CommStats stats;
  for (auto _ : state) {
    msg::Machine machine(kProcs, cm);
    msg::run_spmd(machine, [&](msg::Context& ctx) {
      auto r = apps::run_pic(ctx, cfg);
      if (ctx.rank() == 0) result = std::move(r);
    });
    stats = machine.total_stats();
  }

  state.SetLabel(period == 0 ? "static-block"
                             : "rebalance-every-" + std::to_string(period));
  state.counters["mean_imbalance"] = result.mean_imbalance;
  state.counters["max_imbalance"] = result.max_imbalance;
  state.counters["makespan_units"] = result.makespan_units;
  state.counters["rebalances"] = result.rebalances;
  state.counters["data_kb"] = static_cast<double>(stats.data_bytes) / 1024.0;
  state.counters["modeled_comm_ms"] = stats.modeled_data_us(cm) / 1000.0;
  state.counters["dropped"] = static_cast<double>(result.dropped);
  state.counters["redist_scratch_prepares"] =
      static_cast<double>(result.redist_scratch_prepares);
  state.counters["redist_scratch_allocs"] =
      static_cast<double>(result.redist_scratch_allocs);
}

/// The Figure-2 rebalance flip in isolation: a FIELD-shaped array
/// alternating between two B_BLOCK partitions (the balanced and the
/// drifted bounds).  After one warmup flip in each direction, the cached
/// configuration replays plans through the persistent exchange scratch --
/// allocs_per_replay_redist must be exactly zero (CI-gated); the cold
/// configuration rebuilds the plan inside every flip.
void BM_PicRedistReplay(benchmark::State& state) {
  const bool cached = state.range(0) != 0;
  constexpr int kProcs = 4;
  constexpr int kFlips = 24;
  constexpr Index kNCell = 256;
  constexpr Index kNPart = 64;
  const msg::CostModel cm{};
  state.SetLabel(cached ? "pic_flip/cached" : "pic_flip/cold");

  std::vector<double> iter_seconds;
  std::atomic<std::uint64_t> grow{0}, prepares{0}, plan_hits{0};
  for (auto _ : state) {
    grow = prepares = plan_hits = 0;
    msg::Machine machine(kProcs, cm);
    std::atomic<double> secs{0.0};
    msg::run_spmd(machine, [&](msg::Context& ctx) {
      rt::Env env(ctx);
      rt::DistArray<double> field(
          env, {.name = "FIELD",
                .domain = IndexDomain({dist::Range{1, kNCell},
                                       dist::Range{1, kNPart}}),
                .dynamic = true,
                .initial = {{dist::block(), dist::col()}}});
      field.init([](const IndexVec& i) {
        return static_cast<double>(i[0] * 100 + i[1]);
      });
      field.set_redist_plan_cache(cached);
      // The balanced vs drifted partitions of a 4-rank rebalance.
      const dist::DistributionType balanced{
          dist::b_block({64, 128, 192, kNCell}), dist::col()};
      const dist::DistributionType drifted{
          dist::b_block({32, 72, 128, kNCell}), dist::col()};
      // Warmup covers every transition the timed loop replays: plans for
      // (drifted -> balanced) and (balanced -> drifted) plus the scratch
      // envelope of both directions.
      field.distribute(drifted);
      field.distribute(balanced);
      field.distribute(drifted);
      field.reset_exchange_scratch_stats();
      ctx.barrier();
      const auto t0 = std::chrono::steady_clock::now();
      ctx.barrier();
      for (int f = 0; f < kFlips; ++f) {
        field.distribute(f % 2 ? drifted : balanced);
      }
      ctx.barrier();
      if (ctx.rank() == 0) {
        secs.store(std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - t0)
                       .count());
      }
      grow.fetch_add(field.exchange_scratch_stats().grow_allocs);
      prepares.fetch_add(field.exchange_scratch_stats().prepares);
      if (ctx.rank() == 0) plan_hits.store(field.redist_plan_hits());
    });
    iter_seconds.push_back(secs.load());
  }
  std::sort(iter_seconds.begin(), iter_seconds.end());
  const double median = iter_seconds[iter_seconds.size() / 2];
  state.counters["ns_per_flip"] = median * 1e9 / kFlips;
  state.counters["plan_cached"] = cached ? 1 : 0;
  state.counters["redist_plan_hits"] = static_cast<double>(plan_hits.load());
  state.counters["allocs_per_replay_redist"] =
      static_cast<double>(grow.load()) /
      (static_cast<double>(kFlips) * kProcs);
  state.counters["scratch_prepares"] = static_cast<double>(prepares.load());
}

}  // namespace

BENCHMARK(BM_Pic)
    ->ArgNames({"period"})
    ->Arg(0)
    ->Arg(10)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

BENCHMARK(BM_PicRedistReplay)
    ->ArgNames({"cached"})
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(9);
