// E3 -- the Figure 2 PIC claim: "the motion of particles during the
// simulation may lead to a severe load imbalance [under a static block
// distribution] ... a new BOUNDS array is computed and the cells
// redistributed to balance the workload" (B_BLOCK rebalancing every 10th
// iteration).
//
// Rows: rebalance period 0 (static BLOCK), 10 (Figure 2), 1 (every step --
// the over-eager ablation from DESIGN.md section 6).
// Counters:
//   mean_imbalance / max_imbalance -- per-step max/mean particle load
//   makespan_units                 -- modeled computation makespan
//   rebalances, redist_kb          -- cost side of the tradeoff
// Expected shape: period 10 cuts imbalance and makespan substantially over
// static; period 1 buys little extra balance for much more redistribution
// traffic.
#include <benchmark/benchmark.h>

#include "vf/apps/pic_sim.hpp"
#include "vf/msg/spmd.hpp"

namespace {

using namespace vf;  // NOLINT(google-build-using-namespace)

void BM_Pic(benchmark::State& state) {
  const int period = static_cast<int>(state.range(0));
  constexpr int kProcs = 4;
  apps::PicConfig cfg;
  cfg.ncell = 200;
  cfg.npart_max = 1200;
  cfg.particles = 10000;
  cfg.steps = 50;
  cfg.rebalance_period = period;
  const msg::CostModel cm{};

  apps::PicResult result;
  msg::CommStats stats;
  for (auto _ : state) {
    msg::Machine machine(kProcs, cm);
    msg::run_spmd(machine, [&](msg::Context& ctx) {
      auto r = apps::run_pic(ctx, cfg);
      if (ctx.rank() == 0) result = std::move(r);
    });
    stats = machine.total_stats();
  }

  state.SetLabel(period == 0 ? "static-block"
                             : "rebalance-every-" + std::to_string(period));
  state.counters["mean_imbalance"] = result.mean_imbalance;
  state.counters["max_imbalance"] = result.max_imbalance;
  state.counters["makespan_units"] = result.makespan_units;
  state.counters["rebalances"] = result.rebalances;
  state.counters["data_kb"] = static_cast<double>(stats.data_bytes) / 1024.0;
  state.counters["modeled_comm_ms"] = stats.modeled_data_us(cm) / 1000.0;
  state.counters["dropped"] = static_cast<double>(result.dropped);
}

}  // namespace

BENCHMARK(BM_Pic)
    ->ArgNames({"period"})
    ->Arg(0)
    ->Arg(10)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);
