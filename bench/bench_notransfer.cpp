// E5 -- the NOTRANSFER attribute (Section 2.4): "If A is a member of
// NOTRANSFER, then only the access function for A is changed and the
// elements of the array are not physically moved."
//
// A connect class with `secondaries` arrays is redistributed with and
// without NOTRANSFER: transferred bytes scale with the number of moved
// members (1 primary + k secondaries vs 1 primary), while the descriptor
// updates happen either way.
#include <benchmark/benchmark.h>

#include <memory>

#include "vf/msg/spmd.hpp"
#include "vf/rt/dist_array.hpp"

namespace {

using namespace vf;  // NOLINT(google-build-using-namespace)
using dist::Index;
using dist::IndexDomain;

void BM_NoTransfer(benchmark::State& state) {
  const int secondaries = static_cast<int>(state.range(0));
  const bool notransfer = state.range(1) != 0;
  constexpr int kProcs = 4;
  constexpr Index kN = 1 << 17;
  const msg::CostModel cm{};

  msg::CommStats stats;
  for (auto _ : state) {
    msg::Machine machine(kProcs, cm);
    msg::run_spmd(machine, [&](msg::Context& ctx) {
      rt::Env env(ctx);
      rt::DistArray<double> b(env, {.name = "B",
                                    .domain = IndexDomain::of_extents({kN}),
                                    .dynamic = true,
                                    .initial = {{dist::block()}}});
      std::vector<std::unique_ptr<rt::DistArray<double>>> as;
      rt::NoTransfer nt;
      for (int k = 0; k < secondaries; ++k) {
        as.push_back(std::make_unique<rt::DistArray<double>>(
            env,
            rt::DistArray<double>::Spec{
                .name = "A" + std::to_string(k),
                .domain = IndexDomain::of_extents({kN}),
                .dynamic = true},
            rt::Connection::extraction(b)));
        as.back()->fill(2.0);
        if (notransfer) nt.arrays.push_back(as.back().get());
      }
      b.fill(1.0);
      ctx.barrier();
      if (ctx.rank() == 0) machine.reset_stats();
      ctx.barrier();
      b.distribute(dist::DistributionType{dist::cyclic(1)}, nt);
      // Descriptors always follow the primary.
      for (auto& a : as) {
        if (a->distribution().type().dim(0).kind !=
            dist::DimDistKind::Cyclic) {
          throw std::runtime_error("descriptor not updated");
        }
      }
    });
    stats = machine.total_stats();
  }

  state.SetLabel(std::string(notransfer ? "notransfer" : "transfer") + "-k" +
                 std::to_string(secondaries));
  const double moved_per_array =
      static_cast<double>(kN) * (1.0 - 1.0 / kProcs) * sizeof(double);
  state.counters["data_mb"] =
      static_cast<double>(stats.data_bytes) / (1024.0 * 1024.0);
  state.counters["arrays_moved"] =
      static_cast<double>(stats.data_bytes) / moved_per_array;
  state.counters["modeled_ms"] = stats.modeled_data_us(cm) / 1000.0;
}

}  // namespace

BENCHMARK(BM_NoTransfer)
    ->ArgNames({"secondaries", "notransfer"})
    ->ArgsProduct({{0, 1, 2, 4, 8}, {0, 1}})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(2);
