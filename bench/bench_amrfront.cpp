// E12 -- asymmetric per-rank halo exchange on a refinement front: the
// family-keyed halo-plan cache must amortize the asymmetric inspector
// (spec-family validation + per-neighbour-spec run lists) exactly the way
// the uniform cache amortizes the symmetric one (bench_halo / E11).
//
//   cold   -- the Env's halo-plan cache is disabled: every
//             exchange_overlap re-validates the reconciled family and
//             re-derives its asymmetric pack/unpack run lists;
//   cached -- family plans are built once per (distribution, family) pair
//             and replayed as memcpy runs plus one pre-counted
//             all-to-all.
//
// Either way the spec exchange itself runs exactly ONCE per rank (at the
// warmup exchange after the asymmetric declaration) -- asserted through
// the spec_exchanges_per_rank counter: reconciliation is per declaration,
// not per exchange, and repeat exchanges must not re-collect widths.
//
// Two shapes, mirroring bench_halo:
//   amrgrid -- (BLOCK, BLOCK) on a 2x2 grid, per-rank widths 1..3 in both
//              dimensions (the refinement front crossing a corner);
//   amrrows -- (BLOCK, :) over a processor line with per-rank widths in
//              the stride-1 dimension: every ghost plane fragments into n
//              short runs, so the plan construction the cold path repays
//              per call is maximal.  CI gates on this shape
//              (cached >= 1.5x cold via ns_per_exchange) plus
//              allocs_per_exchange == 0 and spec_exchanges_per_rank == 1.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <vector>

#include "vf/msg/spmd.hpp"
#include "vf/rt/dist_array.hpp"

namespace {

using namespace vf;  // NOLINT(google-build-using-namespace)
using dist::Index;
using dist::IndexDomain;
using dist::IndexVec;

void BM_AmrFrontExchange(benchmark::State& state) {
  const int shape = static_cast<int>(state.range(0));
  const bool cached = state.range(1) != 0;
  const auto n = static_cast<Index>(state.range(2));
  const int nprocs = static_cast<int>(state.range(3));
  constexpr int kExchanges = 64;

  state.SetLabel(std::string(shape == 0 ? "amrgrid" : "amrrows") +
                 (cached ? "/cached" : "/cold"));

  msg::CommStats stats;
  // Median over iterations, as in bench_halo: whole iterations are
  // outliers under host load and the CI gate needs a robust estimate.
  std::vector<double> iter_seconds;
  std::atomic<std::uint64_t> plan_hits{0};
  std::atomic<std::uint64_t> plan_misses{0};
  std::atomic<std::uint64_t> scratch_allocs{0};
  std::atomic<std::uint64_t> spec_exchanges{0};
  for (auto _ : state) {
    msg::Machine machine(nprocs);
    scratch_allocs = 0;
    spec_exchanges = 0;
    std::atomic<double> secs{0.0};
    msg::run_spmd(machine, [&](msg::Context& ctx) {
      rt::Env env(ctx, shape == 0 ? dist::ProcessorArray::grid(2, 2)
                                  : dist::ProcessorArray::line(nprocs));
      env.halo_plans().set_enabled(cached);
      const int me = ctx.rank();
      // Per-rank asymmetric widths, 1..3 planes: the refinement front
      // sitting on this rank's side of the grid.
      const Index wl = 1 + (me % 3);
      const Index wh = 1 + ((me * 2 + 1) % 3);
      rt::DistArray<double> a(
          env,
          {.name = "A",
           .domain = IndexDomain::of_extents({n, n}),
           .dynamic = true,
           .initial =
               shape == 0
                   ? dist::DistributionType{dist::block(), dist::block()}
                   : dist::DistributionType{dist::block(), dist::col()},
           .overlap_lo = {wl, shape == 0 ? wh : 0},
           .overlap_hi = {wh, shape == 0 ? wl : 0},
           .overlap_corners = shape == 0,
           .overlap_asymmetric = true});
      a.init([](const IndexVec& i) {
        return static_cast<double>(i[0] + i[1]);
      });
      // Warmup: reconciles the spec family (the ONE allgather) and, with
      // the cache on, builds and caches the family plan.  The exchange
      // scratch is warm either way, so the timed loop must not grow it.
      a.exchange_overlap();
      a.reset_exchange_scratch_stats();
      ctx.barrier();
      ctx.stats() = msg::CommStats{};
      const auto t0 = std::chrono::steady_clock::now();
      ctx.barrier();
      for (int e = 0; e < kExchanges; ++e) {
        a.exchange_overlap();
      }
      ctx.barrier();
      if (ctx.rank() == 0) {
        secs.store(std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - t0)
                       .count());
        plan_hits.store(env.halo_plans().stats().hits);
        plan_misses.store(env.halo_plans().stats().misses);
      }
      scratch_allocs.fetch_add(a.exchange_scratch_stats().grow_allocs);
      spec_exchanges.fetch_add(a.halo_spec_exchanges());
    });
    iter_seconds.push_back(secs.load());
    stats = machine.total_stats();
  }

  std::sort(iter_seconds.begin(), iter_seconds.end());
  const double median = iter_seconds[iter_seconds.size() / 2];
  state.counters["ns_per_exchange"] =
      median * 1e9 / static_cast<double>(kExchanges);
  state.counters["plan_cached"] = cached ? 1 : 0;
  state.counters["halo_plan_hits"] = static_cast<double>(plan_hits.load());
  state.counters["halo_plan_misses"] =
      static_cast<double>(plan_misses.load());
  state.counters["halo_plan_hit_rate"] =
      plan_hits.load() + plan_misses.load() == 0
          ? 0.0
          : static_cast<double>(plan_hits.load()) /
                static_cast<double>(plan_hits.load() + plan_misses.load());
  // Spec-exchange traffic of the last iteration: exactly one per rank
  // (the warmup), never in the timed loop.
  state.counters["spec_exchanges_per_rank"] =
      static_cast<double>(spec_exchanges.load()) / nprocs;
  state.counters["data_msgs_per_exchange"] =
      static_cast<double>(stats.data_messages) / kExchanges;
  state.counters["data_bytes_per_exchange"] =
      static_cast<double>(stats.data_bytes) / kExchanges;
  state.counters["allocs_per_exchange"] =
      static_cast<double>(scratch_allocs.load()) /
      (static_cast<double>(kExchanges) * nprocs);
}

}  // namespace

BENCHMARK(BM_AmrFrontExchange)
    ->ArgNames({"shape", "cached", "n", "P"})
    ->ArgsProduct({{0, 1}, {0, 1}, {512, 1024}, {4}})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(13);
