// E1 -- the Section 4 grid-smoothing claim:
//
//   "A column distribution of the N x N grid will give rise to 2 messages
//    per processor, each of size N, per computation step.  On the other
//    hand, if the grid is distributed by blocks in two dimensions across a
//    p^2 processor array, then each computation step requires 4 messages
//    of size N/p each on each processor.  Thus, given the startup overhead
//    and cost per byte of each message of the target machine, the ratio
//    N/p will determine the most appropriate distribution."
//
// Counters reported per (layout, N, P):
//   msgs_per_rank_step  -- observed data messages per interior rank per step
//   elems_per_msg       -- observed elements per message
//   modeled_us_step     -- observed modeled per-step communication time
//   analytic_us_step    -- the paper's closed-form prediction
// The winner flip as N (and P) change is the crossover the paper argues
// from alpha/beta.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <vector>

#include "vf/apps/smoothing_sim.hpp"
#include "vf/msg/spmd.hpp"

namespace {

using namespace vf;  // NOLINT(google-build-using-namespace)

void BM_Smoothing(benchmark::State& state) {
  const auto layout = state.range(0) == 0 ? apps::SmoothLayout::Columns
                                          : apps::SmoothLayout::Grid2D;
  const auto n = static_cast<dist::Index>(state.range(1));
  const int nprocs = static_cast<int>(state.range(2));
  const auto stencil = state.range(3) == 0 ? apps::SmoothStencil::FivePoint
                                           : apps::SmoothStencil::NinePoint;
  const auto transport = state.range(4) != 0 ? msg::TransportKind::SharedMemory
                                             : msg::TransportKind::Mailbox;
  const bool split = state.range(5) != 0;
  const int steps = 4;
  const msg::CostModel cm{};

  state.SetLabel(std::string(apps::to_string(layout)) + "/" +
                 apps::to_string(stencil) + "/" + msg::to_string(transport) +
                 (split ? "/split" : "/blocking"));

  msg::CommStats stats;
  double checksum = 0.0;
  std::uint64_t halo_hits = 0;
  std::uint64_t halo_misses = 0;
  // Wall time of the smoothing run alone (machine spawn excluded), median
  // over iterations: the overlapped-vs-blocking comparison CI gates on a
  // multicore runner reads ns_per_step of the split rows against the
  // blocking rows at the same (N, P, transport).
  std::vector<double> run_seconds;
  for (auto _ : state) {
    msg::Machine machine(nprocs, cm, transport);
    std::atomic<double> secs{0.0};
    msg::run_spmd(machine, [&](msg::Context& ctx) {
      ctx.barrier();
      const auto t0 = std::chrono::steady_clock::now();
      auto r = apps::run_smoothing(
          ctx,
          {.n = n, .steps = steps, .stencil = stencil, .split_phase = split},
          layout);
      ctx.barrier();
      if (ctx.rank() == 0) {
        secs.store(std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - t0)
                       .count());
        checksum = r.checksum;
        halo_hits = r.halo_plan_hits;
        halo_misses = r.halo_plan_misses;
      }
    });
    run_seconds.push_back(secs.load());
    stats = machine.total_stats();
  }
  benchmark::DoNotOptimize(checksum);
  std::sort(run_seconds.begin(), run_seconds.end());
  state.counters["ns_per_step"] =
      run_seconds[run_seconds.size() / 2] * 1e9 / steps;
  state.counters["transport_shm"] =
      transport == msg::TransportKind::SharedMemory ? 1 : 0;
  state.counters["split_phase"] = split ? 1 : 0;

  // Halo-plan cache traffic (machine-wide): the run-based plans are built
  // once per (rank, distribution, spec) and shared by the ping-pong pair,
  // so hits/(hits+misses) approaches 1 as steps grow.
  state.counters["halo_plan_hits"] = static_cast<double>(halo_hits);
  state.counters["halo_plan_misses"] = static_cast<double>(halo_misses);
  state.counters["halo_plan_hit_rate"] =
      halo_hits + halo_misses == 0
          ? 0.0
          : static_cast<double>(halo_hits) /
                static_cast<double>(halo_hits + halo_misses);

  // Interior ranks exchange on both sides in every ghosted dimension.
  const double interior =
      layout == apps::SmoothLayout::Columns
          ? std::max(1, nprocs - 2)
          : nprocs;  // close enough for the per-rank average on grids
  (void)interior;
  state.counters["msgs_per_rank_step"] =
      static_cast<double>(stats.data_messages) / (nprocs * steps);
  state.counters["elems_per_msg"] =
      stats.data_messages == 0
          ? 0.0
          : static_cast<double>(stats.data_bytes) / sizeof(double) /
                static_cast<double>(stats.data_messages);
  state.counters["modeled_us_step"] =
      stats.modeled_data_us(cm) / (nprocs * steps);
  state.counters["analytic_us_step"] =
      apps::modeled_step_cost_us(layout, n, nprocs, cm, sizeof(double));
}

}  // namespace

BENCHMARK(BM_Smoothing)
    ->ArgNames({"layout", "N", "P", "stencil", "tr", "split"})
    ->ArgsProduct({{0, 1}, {64, 128, 256, 512}, {4, 16}, {0, 1}, {0}, {0}})
    // Overlap methodology rows (see bench/README.md): split-phase vs
    // blocking on the 2-D grid at P >= 16, over both transports.  On a
    // single-core host the split rows measure bookkeeping overhead only;
    // the >= 1.2x overlap gate applies on multicore CI runners where the
    // boundary exchange and the interior update genuinely run in
    // parallel.
    ->ArgsProduct({{1}, {256, 512}, {16}, {1}, {0, 1}, {0, 1}})
    // Scale rows for the CI bench job (shm, P in {16, 64}).
    ->ArgsProduct({{1}, {256}, {16, 64}, {1}, {1}, {0, 1}})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);
