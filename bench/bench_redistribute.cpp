// E4 -- the cost of the DISTRIBUTE statement itself (Sections 2.4 and
// 3.2.2): "At run time, this includes the cost of performing the actual
// data transfers and the cost of maintaining runtime information about the
// current distribution."
//
// Patterns swept:
//   block_to_cyclic1   BLOCK -> CYCLIC(1)      (max scatter)
//   block_to_cyclic8   BLOCK -> CYCLIC(8)      (coarser scatter)
//   shift_section      BLOCK on P(1:P) -> BLOCK on shifted segment sizes
//   bblock_delta       B_BLOCK rebalance moving ~1/8 of the data
//   transpose2d        (:,BLOCK) -> (BLOCK,:)  (the ADI remap)
//   naive_elementwise  BLOCK -> CYCLIC(1) with one message per element --
//                      the aggregation ablation of DESIGN.md section 6
//
// Counters: data_msgs (bounded by P*(P-1) for aggregated patterns),
// moved_frac (fraction of elements that changed processor), modeled_ms.
//   flip_*             repeated DISTRIBUTE flips between two distributions
//                      (the ADI row<->column remap done over and over) with
//                      the redistribution plan cache enabled vs disabled:
//                      the cached path replays memcpy runs and skips the
//                      inspector entirely, so ns_per_flip measures the
//                      amortization the paper's dynamic-distribution
//                      argument depends on.
#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstring>

#include "vf/msg/spmd.hpp"
#include "vf/rt/dist_array.hpp"

namespace {

using namespace vf;  // NOLINT(google-build-using-namespace)
using dist::Index;
using dist::IndexDomain;
using dist::IndexVec;

/// Element-wise (unaggregated) BLOCK -> CYCLIC redistribution: ships every
/// moving element as its own (index, value) message.
void naive_redistribute(msg::Context& ctx, Index n) {
  rt::Env env(ctx);
  const IndexDomain dom = IndexDomain::of_extents({n});
  const dist::Distribution from(dom, {dist::block()}, env.whole());
  const dist::Distribution to(dom, {dist::cyclic(1)}, env.whole());
  const int me = ctx.rank();

  std::vector<double> old_local(
      static_cast<std::size_t>(from.local_size(me)));
  const auto old_layout = from.layout_for(me);
  from.for_owned(me, [&](const IndexVec& i) {
    old_local[static_cast<std::size_t>(from.local_offset(old_layout, i))] =
        static_cast<double>(i[0]);
  });

  // Count how many elements this rank will receive from elsewhere.
  std::size_t expected = 0;
  to.for_owned(me, [&](const IndexVec& i) {
    if (from.owner_rank(i) != me) ++expected;
  });

  struct Wire {
    Index idx;
    double val;
  };
  constexpr int kTag = 99;
  from.for_owned(me, [&](const IndexVec& i) {
    const int dest = to.owner_rank(i);
    if (dest == me) return;
    const Wire w{i[0],
                 old_local[static_cast<std::size_t>(
                     from.local_offset(old_layout, i))]};
    ctx.send_value(dest, kTag, w);
  });

  std::vector<double> new_local(static_cast<std::size_t>(to.local_size(me)));
  const auto new_layout = to.layout_for(me);
  for (std::size_t k = 0; k < expected; ++k) {
    const auto w = ctx.recv_value<Wire>(msg::kAnySource, kTag);
    new_local[static_cast<std::size_t>(
        to.local_offset(new_layout, {w.idx}))] = w.val;
  }
  benchmark::DoNotOptimize(new_local.data());
  ctx.barrier();
}

void BM_Redistribute(benchmark::State& state) {
  const int pattern = static_cast<int>(state.range(0));
  const auto n = static_cast<Index>(state.range(1));
  const int nprocs = static_cast<int>(state.range(2));
  const msg::CostModel cm{};

  static const char* kNames[] = {"block_to_cyclic1", "block_to_cyclic8",
                                 "shift_section",    "bblock_delta",
                                 "transpose2d",      "naive_elementwise"};
  state.SetLabel(kNames[pattern]);

  msg::CommStats stats;
  for (auto _ : state) {
    msg::Machine machine(nprocs, cm);
    msg::run_spmd(machine, [&](msg::Context& ctx) {
      if (pattern == 5) {
        naive_redistribute(ctx, n);
        return;
      }
      rt::Env env(ctx);
      if (pattern == 4) {
        const auto side = static_cast<Index>(std::llround(std::sqrt(
            static_cast<double>(n))));
        rt::DistArray<double> a(
            env, {.name = "A",
                  .domain = IndexDomain::of_extents({side, side}),
                  .dynamic = true,
                  .initial = {{dist::col(), dist::block()}}});
        a.fill(1.0);
        ctx.barrier();
        if (ctx.rank() == 0) machine.reset_stats();
        ctx.barrier();
        a.distribute(dist::DistributionType{dist::block(), dist::col()});
        return;
      }
      rt::DistArray<double> a(env, {.name = "A",
                                    .domain = IndexDomain::of_extents({n}),
                                    .dynamic = true,
                                    .initial = {{dist::block()}}});
      a.fill(1.0);
      ctx.barrier();
      if (ctx.rank() == 0) machine.reset_stats();
      ctx.barrier();
      switch (pattern) {
        case 0:
          a.distribute(dist::DistributionType{dist::cyclic(1)});
          break;
        case 1:
          a.distribute(dist::DistributionType{dist::cyclic(8)});
          break;
        case 2: {
          // Shift segment boundaries by n/(4P): a small-delta remap.
          std::vector<Index> sizes(static_cast<std::size_t>(nprocs),
                                   n / nprocs);
          const Index delta = std::max<Index>(1, n / (4 * nprocs));
          sizes.front() += delta;
          sizes.back() -= delta;
          a.distribute(dist::DistributionType{dist::s_block(sizes)});
          break;
        }
        case 3: {
          // B_BLOCK rebalance moving roughly 1/8 of the array.
          std::vector<Index> bounds;
          for (int p = 1; p <= nprocs; ++p) {
            bounds.push_back(std::min<Index>(
                n, p * (n / nprocs) + (p < nprocs ? n / 8 : 0)));
          }
          a.distribute(dist::DistributionType{dist::b_block(bounds)});
          break;
        }
        default:
          break;
      }
    });
    stats = machine.total_stats();
  }

  const auto elements = static_cast<double>(n);
  state.counters["data_msgs"] = static_cast<double>(stats.data_messages);
  state.counters["pair_bound"] = static_cast<double>(nprocs) * (nprocs - 1);
  state.counters["moved_frac"] =
      static_cast<double>(stats.data_bytes) / sizeof(double) / elements;
  state.counters["modeled_ms"] = stats.modeled_data_us(cm) / 1000.0;
}

/// Repeated-flip benchmark: DISTRIBUTE back and forth between two
/// distributions many times on one machine, measuring steady-state
/// ns/flip.  `cached == 0` disables BOTH the plan cache and the
/// descriptor registry: every flip re-runs descriptor construction
/// (owner-table copy + DimMap build) and the run-construction inspector
/// -- the per-statement cost the paper's Section 3.2.2 charges a naive
/// runtime.  `cached == 1` interns descriptors (each flip resolves the
/// target via a registry hash hit) and replays plans keyed on the
/// (old, new) handle-identity pair.  The gap matters most for
/// flip_indirect, where descriptor construction used to dominate and
/// made plan caching alone net-neutral (ROADMAP).
void BM_RedistributeFlip(benchmark::State& state) {
  const int pattern = static_cast<int>(state.range(0));
  const bool cached = state.range(1) != 0;
  const auto n = static_cast<Index>(state.range(2));
  const int nprocs = static_cast<int>(state.range(3));
  constexpr int kFlips = 10;

  static const char* kNames[] = {"flip_block_cyclic1", "flip_transpose2d",
                                 "flip_indirect"};
  state.SetLabel(std::string(kNames[pattern]) +
                 (cached ? "/cached" : "/cold"));

  msg::CommStats stats;
  double total_seconds = 0;
  std::int64_t total_flips = 0;
  std::atomic<std::uint64_t> reg_hits{0};
  std::atomic<std::uint64_t> reg_misses{0};
  std::atomic<std::uint64_t> reg_size{0};
  for (auto _ : state) {
    msg::Machine machine(nprocs);
    std::atomic<double> secs{0.0};
    msg::run_spmd(machine, [&](msg::Context& ctx) {
      rt::Env env(ctx);
      env.registry().set_enabled(cached);
      dist::DistributionType ta;
      dist::DistributionType tb;
      IndexDomain dom = IndexDomain::of_extents({n});
      switch (pattern) {
        case 0:
          ta = {dist::block()};
          tb = {dist::cyclic(1)};
          break;
        case 1: {
          const auto side = static_cast<Index>(
              std::llround(std::sqrt(static_cast<double>(n))));
          dom = IndexDomain::of_extents({side, side});
          ta = {dist::col(), dist::block()};
          tb = {dist::block(), dist::col()};
          break;
        }
        default: {
          std::vector<int> oa(static_cast<std::size_t>(n));
          std::vector<int> ob(static_cast<std::size_t>(n));
          for (Index k = 0; k < n; ++k) {
            oa[static_cast<std::size_t>(k)] =
                static_cast<int>((k * 7 + 1) % nprocs);
            ob[static_cast<std::size_t>(k)] =
                static_cast<int>((k * 5 + 3) % nprocs);
          }
          ta = {dist::indirect(std::move(oa))};
          tb = {dist::indirect(std::move(ob))};
          break;
        }
      }
      rt::DistArray<double> a(env, {.name = "A",
                                    .domain = dom,
                                    .dynamic = true,
                                    .initial = ta});
      a.set_redist_plan_cache(cached);
      a.fill(1.0);
      // Warmup round trip: with the cache on this builds both plans.
      a.distribute(tb);
      a.distribute(ta);
      // Each rank zeroes its OWN counters between two barriers: no rank
      // ever writes another rank's (non-atomic) stats concurrently.
      ctx.barrier();
      ctx.stats() = msg::CommStats{};
      const auto t0 = std::chrono::steady_clock::now();
      ctx.barrier();
      for (int f = 0; f < kFlips; ++f) {
        a.distribute(f % 2 == 0 ? tb : ta);
      }
      ctx.barrier();
      if (ctx.rank() == 0) {
        secs.store(std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - t0)
                       .count());
        reg_hits.store(env.registry().stats().hits);
        reg_misses.store(env.registry().stats().misses);
        reg_size.store(env.registry().size());
      }
    });
    total_seconds += secs.load();
    total_flips += kFlips;
    stats = machine.total_stats();
  }

  state.counters["ns_per_flip"] =
      total_seconds * 1e9 / static_cast<double>(total_flips);
  state.counters["plan_cached"] = cached ? 1 : 0;
  // Descriptor-registry traffic on rank 0 of the last run: a healthy
  // cached flip loop shows hits ~= flips (every DISTRIBUTE resolves its
  // target descriptor by hash lookup) and a small constant miss count.
  state.counters["registry_hits"] = static_cast<double>(reg_hits.load());
  state.counters["registry_misses"] = static_cast<double>(reg_misses.load());
  state.counters["registry_hit_rate"] =
      reg_hits.load() + reg_misses.load() == 0
          ? 0.0
          : static_cast<double>(reg_hits.load()) /
                static_cast<double>(reg_hits.load() + reg_misses.load());
  state.counters["registry_interned"] = static_cast<double>(reg_size.load());
  state.counters["data_msgs_per_flip"] =
      static_cast<double>(stats.data_messages) / kFlips;
  state.counters["data_bytes_per_flip"] =
      static_cast<double>(stats.data_bytes) / kFlips;
  state.counters["ctl_msgs_per_flip"] =
      static_cast<double>(stats.ctl_messages) / kFlips;
}

}  // namespace

BENCHMARK(BM_RedistributeFlip)
    ->ArgNames({"pattern", "cached", "n", "P"})
    ->ArgsProduct({{0, 1, 2}, {0, 1}, {1 << 14, 1 << 17}, {4}})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);

BENCHMARK(BM_Redistribute)
    ->ArgNames({"pattern", "n", "P"})
    ->ArgsProduct({{0, 1, 2, 3, 4}, {1 << 14, 1 << 17, 1 << 20}, {4, 8}})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(2);

// The unaggregated ablation is quadratic in messages: keep it to the small
// size so the bench suite stays fast.
BENCHMARK(BM_Redistribute)
    ->ArgNames({"pattern", "n", "P"})
    ->Args({5, 1 << 14, 4})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(2);
