// E8 -- compiler support (Section 3.1): the reaching-distribution analysis
// and partial evaluation of queries.  The claims benchmarked:
//   * analysis time grows roughly linearly with program size;
//   * RANGE annotations keep plausible sets small (no widening) and let
//     partial evaluation prune DCASE arms and redundant DISTRIBUTEs that
//     would otherwise survive.
#include <benchmark/benchmark.h>

#include "vf/compile/parteval.hpp"

namespace {

using namespace vf;  // NOLINT(google-build-using-namespace)
using compile::AbstractDist;
using compile::Program;
using compile::ProgramBuilder;
using query::TypePattern;

AbstractDist blockT() { return TypePattern{query::p_block()}; }
AbstractDist cyclicT(dist::Index k) {
  return TypePattern{query::p_cyclic(k)};
}

/// A synthetic phase-structured program: `phases` repetitions of
/// loop { use; maybe-distribute; dcase }, the shape of adaptive codes.
Program make_program(int phases, bool with_range) {
  ProgramBuilder b;
  compile::ArrayInfo info{.name = "A", .rank = 1, .dynamic = true,
                          .initial = blockT()};
  if (with_range) {
    info.range = {TypePattern{query::p_block()},
                  TypePattern{query::p_cyclic_any()}};
  }
  b.declare(info);
  for (int k = 0; k < phases; ++k) {
    b.loop([&](ProgramBuilder& body) {
      body.use({"A"}, "");
      body.if_else([&](ProgramBuilder& t) {
        t.distribute("A", cyclicT(1 + k % 3));
      });
      body.call_unknown({"A"});
    });
    b.dcase({"A"},
            {{{TypePattern{query::p_gen_block()}}, nullptr},
             {{TypePattern{query::p_cyclic_any()}}, nullptr}},
            [](ProgramBuilder&) {});
    b.distribute("A", blockT());
    b.distribute("A", blockT());  // provably redundant
  }
  return b.build();
}

void BM_ReachingAnalysis(benchmark::State& state) {
  const int phases = static_cast<int>(state.range(0));
  Program p = make_program(phases, /*with_range=*/true);
  int iterations = 0;
  for (auto _ : state) {
    auto r = compile::analyze_reaching(p);
    iterations = r.iterations;
    benchmark::DoNotOptimize(r.in.data());
  }
  state.counters["cfg_nodes"] = static_cast<double>(p.num_nodes());
  state.counters["fixpoint_visits"] = iterations;
  state.counters["visits_per_node"] =
      static_cast<double>(iterations) / static_cast<double>(p.num_nodes());
}

void BM_PartialEvaluation(benchmark::State& state) {
  const int phases = static_cast<int>(state.range(0));
  const bool with_range = state.range(1) != 0;
  Program p = make_program(phases, with_range);
  auto r = compile::analyze_reaching(p);
  compile::PartialEvalReport report;
  for (auto _ : state) {
    report = compile::partial_eval(p, r);
    benchmark::DoNotOptimize(report.dcases.data());
  }
  int dead = 0, total = 0;
  for (const auto& dc : report.dcases) {
    for (auto v : dc.arms) {
      ++total;
      if (v == compile::ArmVerdict::Never) ++dead;
    }
  }
  state.SetLabel(with_range ? "with-range" : "no-range");
  state.counters["dcase_arms"] = total;
  state.counters["arms_pruned"] = dead;
  state.counters["redundant_distributes"] =
      static_cast<double>(report.redundant_distributes.size());
}

}  // namespace

BENCHMARK(BM_ReachingAnalysis)
    ->ArgNames({"phases"})
    ->Arg(1)
    ->Arg(4)
    ->Arg(16)
    ->Arg(64)
    ->Arg(256);

BENCHMARK(BM_PartialEvaluation)
    ->ArgNames({"phases", "range"})
    ->ArgsProduct({{16}, {0, 1}});
