// Skew-aware redistribution (PRPD hybrid plans) vs the all-to-owner
// baseline.
//
// The workload is the heavy-key DISTRIBUTE the ROADMAP names: a 1-D array
// flipping between BLOCK and an INDIRECT owner table, where the table is
// either uniform (a rotated block -- balanced, but every element moves) or
// Zipf-distributed over ranks (s in {0.8, 1.2}: rank r attracts elements
// with probability proportional to (r+1)^-s, hot-spotting rank 0).
//
// Rows: procs in {4, 16, 64} x zipf_x10 in {0 (uniform), 8, 12} x
// hybrid in {0 (SkewPolicy::Off), 1 (Auto)}.
// Counters:
//   balance            -- max_rank_bytes / mean_rank_bytes of the timed
//                         flip loop, from CommStats' per-peer counters
//                         (sent + received per rank)
//   ns_per_flip        -- median wall-clock per DISTRIBUTE
//   target_skew        -- ownership max/mean the detector saw
//   hybrid_flips       -- flips whose target was hybridized (must be 0 on
//                         uniform rows: zero hybrid overhead, CI-gated)
//   allocs_per_replay_redist -- heap allocations per cached flip (CI = 0)
// CI gates (P = 16, s = 1.2): hybrid balance <= 0.5x baseline balance and
// hybrid ns_per_flip <= baseline ns_per_flip.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <memory>
#include <random>
#include <vector>

#include "vf/msg/spmd.hpp"
#include "vf/rt/dist_array.hpp"

namespace {

using namespace vf;  // NOLINT(google-build-using-namespace)
using dist::Index;
using dist::IndexDomain;
using dist::IndexVec;

// Large enough that the bytes each flip moves dominate the fixed per-flip
// cost (plan replay, barriers, rank scheduling); at 1<<16 the fixed cost
// hides the hybrid's ~3x data-volume reduction entirely.
constexpr Index kElems = 1 << 19;
constexpr int kFlips = 16;

/// The target owner table: uniform rows get a rotated block (balanced,
/// but disjoint from BLOCK so every element moves); Zipf rows draw each
/// element's owner from a Zipf-over-ranks inverse CDF with a fixed seed,
/// so every benchmark process builds the identical table.
std::vector<int> make_owner_table(int np, double zipf_s) {
  std::vector<int> owners(static_cast<std::size_t>(kElems));
  if (zipf_s <= 0.0) {
    for (Index i = 0; i < kElems; ++i) {
      owners[static_cast<std::size_t>(i)] =
          static_cast<int>((i * np / kElems + 1) % np);
    }
    return owners;
  }
  std::vector<double> cdf(static_cast<std::size_t>(np));
  double acc = 0.0;
  for (int r = 0; r < np; ++r) {
    acc += std::pow(static_cast<double>(r + 1), -zipf_s);
    cdf[static_cast<std::size_t>(r)] = acc;
  }
  for (double& v : cdf) v /= acc;
  std::mt19937_64 rng(0xBADC0FFEuLL + static_cast<std::uint64_t>(np) * 1000 +
                      static_cast<std::uint64_t>(zipf_s * 100));
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  for (Index i = 0; i < kElems; ++i) {
    const auto it = std::lower_bound(cdf.begin(), cdf.end(), unit(rng));
    owners[static_cast<std::size_t>(i)] =
        static_cast<int>(it - cdf.begin());
  }
  return owners;
}

void BM_SkewFlip(benchmark::State& state) {
  const int np = static_cast<int>(state.range(0));
  const double zipf_s = static_cast<double>(state.range(1)) / 10.0;
  const bool hybrid = state.range(2) != 0;
  const msg::CostModel cm{};
  state.SetLabel(std::string(zipf_s > 0.0
                                 ? "zipf" + std::to_string(state.range(1))
                                 : "uniform") +
                 (hybrid ? "/hybrid" : "/baseline"));

  const auto table = std::make_shared<const dist::IndirectTable>(
      make_owner_table(np, zipf_s));

  std::vector<double> iter_seconds;
  std::atomic<double> balance{1.0}, target_skew{1.0}, moved_mb{0.0};
  std::atomic<std::uint64_t> hybrid_flips{0}, skew_checks{0}, plan_hits{0},
      grow{0};
  for (auto _ : state) {
    grow = 0;
    msg::Machine machine(np, cm);
    std::atomic<double> secs{0.0};
    msg::run_spmd(machine, [&](msg::Context& ctx) {
      rt::Env env(ctx);
      rt::DistArray<double> a(
          env, {.name = "A",
                .domain = IndexDomain({dist::Range{1, kElems}}),
                .dynamic = true,
                .initial = {{dist::block()}}});
      a.init([](const IndexVec& i) { return static_cast<double>(i[0]); });
      // cap_factor 0.5 bounds every heavy rank's receive volume at half
      // its fair share: the excess stays with the (balanced) old owners,
      // halving both the hot link and the total data moved.
      a.set_skew_policy(hybrid ? rt::DistArrayBase::SkewPolicy::Auto
                               : rt::DistArrayBase::SkewPolicy::Off,
                        /*threshold=*/4.0, /*cap_factor=*/0.5);
      const dist::DistributionType blockT{dist::block()};
      const dist::DistributionType target{dist::indirect(table)};
      // Warmup plans both directions (and, under Auto, runs the one-time
      // detection + hybridization per direction).
      a.distribute(target);
      a.distribute(blockT);
      a.distribute(target);
      a.distribute(blockT);
      a.reset_exchange_scratch_stats();
      // Per-peer byte snapshot so balance covers exactly the timed loop.
      const std::vector<std::uint64_t> before = ctx.stats().peer_bytes;
      ctx.barrier();
      const auto t0 = std::chrono::steady_clock::now();
      ctx.barrier();
      for (int f = 0; f < kFlips; ++f) {
        a.distribute(f % 2 ? blockT : target);
      }
      ctx.barrier();
      if (ctx.rank() == 0) {
        secs.store(std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - t0)
                       .count());
      }
      std::vector<std::uint64_t> sent = ctx.stats().peer_bytes;
      if (sent.size() < static_cast<std::size_t>(np)) {
        sent.resize(static_cast<std::size_t>(np), 0);
      }
      for (std::size_t d = 0; d < before.size(); ++d) sent[d] -= before[d];
      // Per-rank totals (sent + received) from everyone's per-peer rows;
      // the collective runs outside the timed region.
      const auto rows = ctx.allgather_vec(std::move(sent));
      if (ctx.rank() == 0) {
        std::vector<double> total(static_cast<std::size_t>(np), 0.0);
        for (int r = 0; r < np; ++r) {
          for (int d = 0; d < np; ++d) {
            const auto b = static_cast<double>(
                rows[static_cast<std::size_t>(r)]
                    [static_cast<std::size_t>(d)]);
            total[static_cast<std::size_t>(r)] += b;  // sent by r
            total[static_cast<std::size_t>(d)] += b;  // received by d
          }
        }
        double sum = 0.0, max = 0.0;
        for (const double t : total) {
          sum += t;
          max = std::max(max, t);
        }
        balance.store(sum > 0.0 ? max / (sum / np) : 1.0);
        moved_mb.store(sum / 2.0 / (1 << 20));  // sent+received double-counts
        target_skew.store(a.peak_target_skew());
        hybrid_flips.store(a.hybrid_flips());
        skew_checks.store(a.skew_checks());
        plan_hits.store(a.redist_plan_hits());
      }
      grow.fetch_add(a.exchange_scratch_stats().grow_allocs);
    });
    iter_seconds.push_back(secs.load());
  }
  std::sort(iter_seconds.begin(), iter_seconds.end());
  const double median = iter_seconds[iter_seconds.size() / 2];
  state.counters["ns_per_flip"] = median * 1e9 / kFlips;
  state.counters["balance"] = balance.load();
  state.counters["moved_mb"] = moved_mb.load();
  state.counters["target_skew"] = target_skew.load();
  state.counters["procs"] = np;
  state.counters["hybrid"] = hybrid ? 1 : 0;
  state.counters["zipf_x10"] = static_cast<double>(state.range(1));
  state.counters["hybrid_flips"] = static_cast<double>(hybrid_flips.load());
  state.counters["skew_checks"] = static_cast<double>(skew_checks.load());
  state.counters["redist_plan_hits"] = static_cast<double>(plan_hits.load());
  state.counters["allocs_per_replay_redist"] =
      static_cast<double>(grow.load()) /
      (static_cast<double>(kFlips) * np);
}

}  // namespace

BENCHMARK(BM_SkewFlip)
    ->ArgNames({"procs", "zipf_x10", "hybrid"})
    ->Args({4, 0, 0})
    ->Args({4, 0, 1})
    ->Args({4, 8, 0})
    ->Args({4, 8, 1})
    ->Args({4, 12, 0})
    ->Args({4, 12, 1})
    ->Args({16, 0, 0})
    ->Args({16, 0, 1})
    ->Args({16, 8, 0})
    ->Args({16, 8, 1})
    ->Args({16, 12, 0})
    ->Args({16, 12, 1})
    ->Args({64, 0, 0})
    ->Args({64, 0, 1})
    ->Args({64, 8, 0})
    ->Args({64, 8, 1})
    ->Args({64, 12, 0})
    ->Args({64, 12, 1})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);
