// E2 -- the Figure 1 ADI claim: with dynamic redistribution both sweeps
// run with zero communication; "all the communication is confined to the
// redistribution operation", which can be "implemented by an efficient
// pre-compiled routine".  Static layouts either communicate during the
// y-sweep (gathered lines) or keep a second, transposed copy of the array
// ("This approach, clearly, wastes storage space").
//
// Counters per (strategy, N):
//   data_msgs_iter / data_kb_iter -- communication per ADI iteration
//   modeled_us_iter               -- modeled communication per iteration
// Expected shape: dynamic-redistribution and static-two-copies move the
// same volume (the whole array, twice per iteration), but the dynamic
// version needs no second array; static-gather-lines moves a comparable
// volume with additional inspector traffic on the first iteration.
#include <benchmark/benchmark.h>

#include "vf/apps/adi_sim.hpp"
#include "vf/msg/spmd.hpp"

namespace {

using namespace vf;  // NOLINT(google-build-using-namespace)

void BM_Adi(benchmark::State& state) {
  const auto strat = static_cast<apps::AdiStrategy>(state.range(0));
  const auto n = static_cast<dist::Index>(state.range(1));
  constexpr int kProcs = 4;
  constexpr int kIters = 3;
  const msg::CostModel cm{};

  msg::CommStats stats;
  double checksum = 0.0;
  std::uint64_t halo_hits = 0;
  std::uint64_t halo_misses = 0;
  for (auto _ : state) {
    msg::Machine machine(kProcs, cm);
    msg::run_spmd(machine, [&](msg::Context& ctx) {
      auto r = apps::run_adi(ctx, {.nx = n, .ny = n, .iterations = kIters},
                             strat);
      if (ctx.rank() == 0) {
        checksum = r.checksum;
        halo_hits = r.halo_plan_hits;
        halo_misses = r.halo_plan_misses;
      }
    });
    stats = machine.total_stats();
  }
  benchmark::DoNotOptimize(checksum);

  state.SetLabel(apps::to_string(strat));
  state.counters["data_msgs_iter"] =
      static_cast<double>(stats.data_messages) / kIters;
  state.counters["data_kb_iter"] =
      static_cast<double>(stats.data_bytes) / 1024.0 / kIters;
  state.counters["modeled_us_iter"] = stats.modeled_data_us(cm) / kIters;
  // Halo-plan cache traffic (machine-wide): 0 for every current strategy
  // -- ADI sweeps need no ghost planes -- but emitted so BENCH json diffs
  // cover every halo consumer uniformly.
  state.counters["halo_plan_hits"] = static_cast<double>(halo_hits);
  state.counters["halo_plan_misses"] = static_cast<double>(halo_misses);
}

}  // namespace

BENCHMARK(BM_Adi)
    ->ArgNames({"strategy", "N"})
    ->ArgsProduct({{0, 1, 2}, {32, 64, 128, 256}})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(2);
