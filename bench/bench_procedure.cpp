// E10 -- procedure-boundary redistribution (paper Sections 3, 4, 5).
//
// "The ADI example could be rewritten such that it calls a different
// subroutine in the second loop, one which specifically declares its
// argument to be distributed by block in the first dimension" -- implicit
// redistribution at procedure boundaries.  The paper also notes the
// semantic difference from HPF: VF returns the callee's distribution to
// the caller; HPF reinstates the caller's.
//
// Measured: a phase loop calling a (:,BLOCK)-phase procedure and a
// (BLOCK,:)-phase procedure alternately.  Under VF return semantics each
// phase boundary costs one redistribution; under HPF restore semantics
// every call pays entry AND exit motion -- twice the transfers.
#include <benchmark/benchmark.h>

#include "vf/msg/spmd.hpp"
#include "vf/rt/dist_array.hpp"
#include "vf/rt/procedure.hpp"

namespace {

using namespace vf;  // NOLINT(google-build-using-namespace)
using dist::Index;
using dist::IndexDomain;

void BM_ProcedureBoundary(benchmark::State& state) {
  const auto mode = state.range(0) == 0 ? rt::ArgReturnMode::ReturnNewDistribution
                                        : rt::ArgReturnMode::RestoreOnExit;
  const auto n = static_cast<Index>(state.range(1));
  constexpr int kProcs = 4;
  constexpr int kPhases = 4;
  const msg::CostModel cm{};

  msg::CommStats stats;
  int redistributions = 0;
  for (auto _ : state) {
    msg::Machine machine(kProcs, cm);
    msg::run_spmd(machine, [&](msg::Context& ctx) {
      rt::Env env(ctx);
      rt::DistArray<double> v(
          env, {.name = "V",
                .domain = IndexDomain::of_extents({n, n}),
                .dynamic = true,
                .initial = {{dist::col(), dist::block()}}});
      v.fill(1.0);
      ctx.barrier();
      if (ctx.rank() == 0) machine.reset_stats();
      ctx.barrier();
      int moved = 0;
      for (int phase = 0; phase < kPhases; ++phase) {
        // x-phase procedure: dummy declared DIST (:, BLOCK).
        auto r1 = rt::call_procedure(
            {{&v, rt::FormalArg::with_type({dist::col(), dist::block()})}},
            mode, [] {});
        // Two consecutive y-phase procedures, both declaring DIST
        // (BLOCK, :).  Under VF return semantics the second call finds the
        // distribution already in place; under HPF restore semantics both
        // calls pay entry and exit motion.
        auto r2 = rt::call_procedure(
            {{&v, rt::FormalArg::with_type({dist::block(), dist::col()})}},
            mode, [] {});
        auto r3 = rt::call_procedure(
            {{&v, rt::FormalArg::with_type({dist::block(), dist::col()})}},
            mode, [] {});
        moved += r1.entry_redistributions + r1.exit_restores +
                 r2.entry_redistributions + r2.exit_restores +
                 r3.entry_redistributions + r3.exit_restores;
      }
      if (ctx.rank() == 0) redistributions = moved;
    });
    stats = machine.total_stats();
  }

  state.SetLabel(mode == rt::ArgReturnMode::ReturnNewDistribution
                     ? "vf-return-new"
                     : "hpf-restore");
  state.counters["redistributions"] = redistributions;
  state.counters["data_mb"] =
      static_cast<double>(stats.data_bytes) / (1024.0 * 1024.0);
  state.counters["modeled_ms"] = stats.modeled_data_us(cm) / 1000.0;
}

}  // namespace

BENCHMARK(BM_ProcedureBoundary)
    ->ArgNames({"mode", "N"})
    ->ArgsProduct({{0, 1}, {64, 128, 256}})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(2);
