// E7 -- inspector/executor amortization (Section 3.2, PARTI [15]): the
// inspector (schedule construction, including translation) is paid once
// and reused across executor calls.  Sweeping the reuse count shows the
// per-access cost converging to the pure executor cost; the
// rebuild-every-time column is the strawman a compiler without schedule
// reuse would produce.
//
// BM_ExecutorReplay and BM_ExecutorSteadyStateAllocs measure the replay
// discipline itself: a warmed-up executor call must beat the
// rebuild-per-call path on wall time (CI gates warm >= 1.5x cold) and
// must perform zero heap allocations in the exchange-scratch facility
// (allocs_per_replay == 0 for gather, scatter and scatter_add; CI-gated).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <random>

#include "vf/msg/spmd.hpp"
#include "vf/parti/schedule.hpp"
#include "vf/parti/translation_table.hpp"

namespace {

using namespace vf;  // NOLINT(google-build-using-namespace)
using dist::Index;
using dist::IndexDomain;
using dist::IndexVec;

constexpr int kProcs = 4;
constexpr Index kN = 1 << 16;
constexpr int kRequests = 4096;

std::vector<IndexVec> random_points(int rank, Index n, int count) {
  std::mt19937 rng(777 + rank);
  std::uniform_int_distribution<Index> pick(1, n);
  std::vector<IndexVec> pts;
  pts.reserve(static_cast<std::size_t>(count));
  for (int k = 0; k < count; ++k) pts.push_back({pick(rng)});
  return pts;
}

void BM_GatherWithScheduleReuse(benchmark::State& state) {
  const int reuse = static_cast<int>(state.range(0));
  const msg::CostModel cm{};

  msg::CommStats stats;
  for (auto _ : state) {
    msg::Machine machine(kProcs, cm);
    msg::run_spmd(machine, [&](msg::Context& ctx) {
      rt::Env env(ctx);
      rt::DistArray<double> a(env, {.name = "A",
                                    .domain = IndexDomain::of_extents({kN}),
                                    .dynamic = true,
                                    .initial = {{dist::block()}}});
      a.init([](const IndexVec& i) { return static_cast<double>(i[0]); });
      auto pts = random_points(ctx.rank(), kN, kRequests);
      ctx.barrier();
      if (ctx.rank() == 0) machine.reset_stats();
      ctx.barrier();
      parti::Schedule sched(ctx, a.dist_handle(), pts);  // inspector, once
      std::vector<double> out(pts.size());
      for (int r = 0; r < reuse; ++r) {
        sched.gather(ctx, a, out);  // executor, `reuse` times
      }
      benchmark::DoNotOptimize(out.data());
    });
    stats = machine.total_stats();
  }

  state.counters["reuse"] = reuse;
  state.counters["modeled_us_per_gather"] =
      stats.modeled_data_us(cm) / reuse;
  state.counters["bytes_per_gather"] =
      static_cast<double>(stats.data_bytes) / reuse;
}

void BM_GatherRebuildEveryTime(benchmark::State& state) {
  const int repeats = static_cast<int>(state.range(0));
  const msg::CostModel cm{};

  msg::CommStats stats;
  for (auto _ : state) {
    msg::Machine machine(kProcs, cm);
    msg::run_spmd(machine, [&](msg::Context& ctx) {
      rt::Env env(ctx);
      rt::DistArray<double> a(env, {.name = "A",
                                    .domain = IndexDomain::of_extents({kN}),
                                    .dynamic = true,
                                    .initial = {{dist::block()}}});
      a.init([](const IndexVec& i) { return static_cast<double>(i[0]); });
      auto pts = random_points(ctx.rank(), kN, kRequests);
      ctx.barrier();
      if (ctx.rank() == 0) machine.reset_stats();
      ctx.barrier();
      std::vector<double> out(pts.size());
      for (int r = 0; r < repeats; ++r) {
        parti::Schedule sched(ctx, a.dist_handle(), pts);  // every time
        sched.gather(ctx, a, out);
      }
      benchmark::DoNotOptimize(out.data());
    });
    stats = machine.total_stats();
  }

  state.counters["modeled_us_per_gather"] =
      stats.modeled_data_us(cm) / repeats;
  state.counters["bytes_per_gather"] =
      static_cast<double>(stats.data_bytes) / repeats;
}

/// Warm executor replay (persistent schedule + scratch) vs cold
/// rebuild-per-call (inspector + first-touch translation + fresh scratch
/// every time).  ns_per_call medians feed the CI cached-vs-cold executor
/// timing gate.
void BM_ExecutorReplay(benchmark::State& state) {
  // mode 0 = cold rebuild-per-call, 1 = warm replay, 2 = warm replay with
  // the recv watchdog armed (the containment layer's overhead
  // configuration: every blocking wait carries a deadline).
  const int mode = static_cast<int>(state.range(0));
  const bool warm = mode != 0;
  constexpr int kCalls = 24;
  const msg::CostModel cm{};
  state.SetLabel(mode == 0   ? "executor/cold"
                 : mode == 1 ? "executor/warm"
                             : "executor/warm_wd");

  std::vector<double> iter_seconds;
  std::uint64_t fence_trips = 0;
  std::uint64_t faults_injected = 0;
  for (auto _ : state) {
    msg::Machine machine(kProcs, cm);
    if (mode == 2) {
      machine.set_recv_watchdog(std::chrono::milliseconds(30000));
    }
    std::atomic<double> secs{0.0};
    msg::run_spmd(machine, [&](msg::Context& ctx) {
      rt::Env env(ctx);
      rt::DistArray<double> a(env, {.name = "A",
                                    .domain = IndexDomain::of_extents({kN}),
                                    .dynamic = true,
                                    .initial = {{dist::block()}}});
      a.init([](const IndexVec& i) { return static_cast<double>(i[0]); });
      auto pts = random_points(ctx.rank(), kN, kRequests);
      parti::Schedule sched(ctx, a.dist_handle(), pts);
      std::vector<double> out(pts.size());
      sched.gather(ctx, a, out);  // warm the binding and the scratch
      ctx.barrier();
      const auto t0 = std::chrono::steady_clock::now();
      ctx.barrier();
      for (int c = 0; c < kCalls; ++c) {
        if (warm) {
          sched.gather(ctx, a, out);
        } else {
          parti::Schedule fresh(ctx, a.dist_handle(), pts);
          fresh.gather(ctx, a, out);
        }
      }
      ctx.barrier();
      if (ctx.rank() == 0) {
        secs.store(std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - t0)
                       .count());
      }
      benchmark::DoNotOptimize(out.data());
    });
    iter_seconds.push_back(secs.load());
    fence_trips = machine.fence_trips();
    faults_injected = machine.faults_injected();
  }
  std::sort(iter_seconds.begin(), iter_seconds.end());
  const double median = iter_seconds[iter_seconds.size() / 2];
  state.counters["ns_per_call"] = median * 1e9 / kCalls;
  state.counters["warm"] = warm ? 1 : 0;
  state.counters["watchdog_armed"] = mode == 2 ? 1 : 0;
  state.counters["fence_trips"] = static_cast<double>(fence_trips);
  state.counters["faults_injected"] = static_cast<double>(faults_injected);
}

/// Steady-state allocation audit of the executor replay paths: after one
/// warmup call per executor, kReplays replays of each must not grow the
/// schedule's exchange scratch at all.  Counters are machine-wide sums,
/// so allocs_per_replay_* == 0 certifies every rank.
void BM_ExecutorSteadyStateAllocs(benchmark::State& state) {
  constexpr int kReplays = 24;
  const msg::CostModel cm{};
  std::atomic<std::uint64_t> grow_gather{0}, grow_scatter{0},
      grow_scatter_add{0}, prepares{0};

  for (auto _ : state) {
    grow_gather = grow_scatter = grow_scatter_add = prepares = 0;
    msg::Machine machine(kProcs, cm);
    msg::run_spmd(machine, [&](msg::Context& ctx) {
      rt::Env env(ctx);
      rt::DistArray<double> a(env, {.name = "A",
                                    .domain = IndexDomain::of_extents({kN}),
                                    .dynamic = true,
                                    .initial = {{dist::block()}}});
      a.init([](const IndexVec& i) { return static_cast<double>(i[0]); });
      auto pts = random_points(ctx.rank(), kN, kRequests);
      parti::Schedule sched(ctx, a.dist_handle(), pts);
      std::vector<double> out(pts.size());
      std::vector<double> vals(pts.size(), 1.0);
      // Warmup: one call of each executor grows the lanes to their
      // steady-state envelope.
      sched.gather(ctx, a, out);
      sched.scatter(ctx, vals, a);
      sched.scatter_add(ctx, vals, a);

      auto audit = [&](std::atomic<std::uint64_t>& sink, auto&& call) {
        sched.reset_scratch_stats();
        for (int r = 0; r < kReplays; ++r) call();
        sink.fetch_add(sched.scratch_stats().grow_allocs);
        prepares.fetch_add(sched.scratch_stats().prepares);
      };
      audit(grow_gather, [&] { sched.gather(ctx, a, out); });
      audit(grow_scatter, [&] { sched.scatter(ctx, vals, a); });
      audit(grow_scatter_add, [&] { sched.scatter_add(ctx, vals, a); });
      benchmark::DoNotOptimize(out.data());
    });
  }
  const double denom = static_cast<double>(kReplays) * kProcs;
  state.counters["allocs_per_replay_gather"] =
      static_cast<double>(grow_gather.load()) / denom;
  state.counters["allocs_per_replay_scatter"] =
      static_cast<double>(grow_scatter.load()) / denom;
  state.counters["allocs_per_replay_scatter_add"] =
      static_cast<double>(grow_scatter_add.load()) / denom;
  state.counters["scratch_prepares"] =
      static_cast<double>(prepares.load());
}

void BM_TranslationTableDereference(benchmark::State& state) {
  const msg::CostModel cm{};
  msg::CommStats stats;
  for (auto _ : state) {
    msg::Machine machine(kProcs, cm);
    msg::run_spmd(machine, [&](msg::Context& ctx) {
      rt::Env env(ctx);
      const IndexDomain dom = IndexDomain::of_extents({kN});
      const dist::Distribution d(dom, {dist::cyclic(3)}, env.whole());
      parti::TranslationTable table(ctx, d);
      std::mt19937 rng(55 + ctx.rank());
      std::uniform_int_distribution<Index> pick(0, kN - 1);
      std::vector<Index> queries;
      for (int k = 0; k < kRequests; ++k) queries.push_back(pick(rng));
      ctx.barrier();
      if (ctx.rank() == 0) machine.reset_stats();
      ctx.barrier();
      auto owners = table.dereference(ctx, queries);
      benchmark::DoNotOptimize(owners.data());
    });
    stats = machine.total_stats();
  }
  state.counters["bytes_per_query"] =
      static_cast<double>(stats.data_bytes) / (kRequests * kProcs);
}

}  // namespace

BENCHMARK(BM_GatherWithScheduleReuse)
    ->ArgNames({"reuse"})
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Arg(16)
    ->Arg(32)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(2);

BENCHMARK(BM_GatherRebuildEveryTime)
    ->ArgNames({"repeats"})
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(2);

BENCHMARK(BM_TranslationTableDereference)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(2);

BENCHMARK(BM_ExecutorReplay)
    ->ArgNames({"mode"})
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(9);

BENCHMARK(BM_ExecutorSteadyStateAllocs)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);
