// E7 -- inspector/executor amortization (Section 3.2, PARTI [15]): the
// inspector (schedule construction, including translation) is paid once
// and reused across executor calls.  Sweeping the reuse count shows the
// per-access cost converging to the pure executor cost; the
// rebuild-every-time column is the strawman a compiler without schedule
// reuse would produce.
#include <benchmark/benchmark.h>

#include <random>

#include "vf/msg/spmd.hpp"
#include "vf/parti/schedule.hpp"
#include "vf/parti/translation_table.hpp"

namespace {

using namespace vf;  // NOLINT(google-build-using-namespace)
using dist::Index;
using dist::IndexDomain;
using dist::IndexVec;

constexpr int kProcs = 4;
constexpr Index kN = 1 << 16;
constexpr int kRequests = 4096;

std::vector<IndexVec> random_points(int rank, Index n, int count) {
  std::mt19937 rng(777 + rank);
  std::uniform_int_distribution<Index> pick(1, n);
  std::vector<IndexVec> pts;
  pts.reserve(static_cast<std::size_t>(count));
  for (int k = 0; k < count; ++k) pts.push_back({pick(rng)});
  return pts;
}

void BM_GatherWithScheduleReuse(benchmark::State& state) {
  const int reuse = static_cast<int>(state.range(0));
  const msg::CostModel cm{};

  msg::CommStats stats;
  for (auto _ : state) {
    msg::Machine machine(kProcs, cm);
    msg::run_spmd(machine, [&](msg::Context& ctx) {
      rt::Env env(ctx);
      rt::DistArray<double> a(env, {.name = "A",
                                    .domain = IndexDomain::of_extents({kN}),
                                    .dynamic = true,
                                    .initial = {{dist::block()}}});
      a.init([](const IndexVec& i) { return static_cast<double>(i[0]); });
      auto pts = random_points(ctx.rank(), kN, kRequests);
      ctx.barrier();
      if (ctx.rank() == 0) machine.reset_stats();
      ctx.barrier();
      parti::Schedule sched(ctx, a.dist_handle(), pts);  // inspector, once
      std::vector<double> out(pts.size());
      for (int r = 0; r < reuse; ++r) {
        sched.gather(ctx, a, out);  // executor, `reuse` times
      }
      benchmark::DoNotOptimize(out.data());
    });
    stats = machine.total_stats();
  }

  state.counters["reuse"] = reuse;
  state.counters["modeled_us_per_gather"] =
      stats.modeled_data_us(cm) / reuse;
  state.counters["bytes_per_gather"] =
      static_cast<double>(stats.data_bytes) / reuse;
}

void BM_GatherRebuildEveryTime(benchmark::State& state) {
  const int repeats = static_cast<int>(state.range(0));
  const msg::CostModel cm{};

  msg::CommStats stats;
  for (auto _ : state) {
    msg::Machine machine(kProcs, cm);
    msg::run_spmd(machine, [&](msg::Context& ctx) {
      rt::Env env(ctx);
      rt::DistArray<double> a(env, {.name = "A",
                                    .domain = IndexDomain::of_extents({kN}),
                                    .dynamic = true,
                                    .initial = {{dist::block()}}});
      a.init([](const IndexVec& i) { return static_cast<double>(i[0]); });
      auto pts = random_points(ctx.rank(), kN, kRequests);
      ctx.barrier();
      if (ctx.rank() == 0) machine.reset_stats();
      ctx.barrier();
      std::vector<double> out(pts.size());
      for (int r = 0; r < repeats; ++r) {
        parti::Schedule sched(ctx, a.dist_handle(), pts);  // every time
        sched.gather(ctx, a, out);
      }
      benchmark::DoNotOptimize(out.data());
    });
    stats = machine.total_stats();
  }

  state.counters["modeled_us_per_gather"] =
      stats.modeled_data_us(cm) / repeats;
  state.counters["bytes_per_gather"] =
      static_cast<double>(stats.data_bytes) / repeats;
}

void BM_TranslationTableDereference(benchmark::State& state) {
  const msg::CostModel cm{};
  msg::CommStats stats;
  for (auto _ : state) {
    msg::Machine machine(kProcs, cm);
    msg::run_spmd(machine, [&](msg::Context& ctx) {
      rt::Env env(ctx);
      const IndexDomain dom = IndexDomain::of_extents({kN});
      const dist::Distribution d(dom, {dist::cyclic(3)}, env.whole());
      parti::TranslationTable table(ctx, d);
      std::mt19937 rng(55 + ctx.rank());
      std::uniform_int_distribution<Index> pick(0, kN - 1);
      std::vector<Index> queries;
      for (int k = 0; k < kRequests; ++k) queries.push_back(pick(rng));
      ctx.barrier();
      if (ctx.rank() == 0) machine.reset_stats();
      ctx.barrier();
      auto owners = table.dereference(ctx, queries);
      benchmark::DoNotOptimize(owners.data());
    });
    stats = machine.total_stats();
  }
  state.counters["bytes_per_query"] =
      static_cast<double>(stats.data_bytes) / (kRequests * kProcs);
}

}  // namespace

BENCHMARK(BM_GatherWithScheduleReuse)
    ->ArgNames({"reuse"})
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Arg(16)
    ->Arg(32)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(2);

BENCHMARK(BM_GatherRebuildEveryTime)
    ->ArgNames({"repeats"})
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(2);

BENCHMARK(BM_TranslationTableDereference)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(2);
