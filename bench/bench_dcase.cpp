// E6 -- the runtime cost of distribution queries (Section 2.5): the DCASE
// construct and the IDT intrinsic.  The paper's premise is that branching
// on the runtime distribution is cheap relative to the phases it selects;
// we measure ns per query as the number of clauses grows, against a plain
// integer-switch dispatch baseline.
#include <benchmark/benchmark.h>

#include <memory>

#include "vf/msg/spmd.hpp"
#include "vf/query/dcase.hpp"
#include "vf/rt/dist_array.hpp"

namespace {

using namespace vf;  // NOLINT(google-build-using-namespace)
using dist::IndexDomain;

/// Queries are local operations: drive rank 0 of a 2x2 virtual machine
/// directly; nothing here communicates.
struct Fixture {
  msg::Machine machine{4};
  msg::Context ctx{machine, 0};
  rt::Env env{ctx, dist::ProcessorArray::grid(2, 2)};
  rt::DistArray<double> b{env,
                          {.name = "B",
                           .domain = IndexDomain::of_extents({64, 64}),
                           .dynamic = true,
                           .initial = {{dist::block(), dist::cyclic(3)}}}};
};

void BM_DcaseClauses(benchmark::State& state) {
  Fixture f;
  const int clauses = static_cast<int>(state.range(0));
  // Build a dcase whose first (clauses-1) arms cannot match and whose last
  // arm does: the worst case walks every clause.
  query::DCase dc({&f.b});
  for (int k = 0; k < clauses - 1; ++k) {
    dc.when({query::TypePattern{query::p_cyclic(100 + k),
                                query::any_dim()}},
            nullptr);
  }
  dc.when({query::TypePattern{query::p_block(), query::p_cyclic(3)}},
          nullptr);
  int matched = 0;
  for (auto _ : state) {
    matched = dc.run();
    benchmark::DoNotOptimize(matched);
  }
  if (matched != clauses - 1) state.SkipWithError("wrong arm matched");
  state.counters["clauses"] = clauses;
}

void BM_Idt(benchmark::State& state) {
  Fixture f;
  const query::TypePattern pat{query::p_block(), query::p_cyclic_any()};
  bool r = false;
  for (auto _ : state) {
    r = query::idt(f.b, pat);
    benchmark::DoNotOptimize(r);
  }
  if (!r) state.SkipWithError("IDT should match");
}

void BM_IdtWithSection(benchmark::State& state) {
  Fixture f;
  const query::TypePattern pat{query::p_block(), query::p_cyclic_any()};
  const auto section = f.env.whole();
  bool r = false;
  for (auto _ : state) {
    r = query::idt(f.b, pat, section);
    benchmark::DoNotOptimize(r);
  }
  if (!r) state.SkipWithError("IDT should match");
}

/// Baseline: what the query would cost if the distribution were tracked by
/// hand as an enum (the code the compiler emits when partial evaluation
/// fully resolves the query).
void BM_DirectDispatchBaseline(benchmark::State& state) {
  volatile int tag = 3;
  int sink = 0;
  for (auto _ : state) {
    switch (tag) {
      case 0:
        sink += 1;
        break;
      case 3:
        sink += 2;
        break;
      default:
        sink += 3;
    }
    benchmark::DoNotOptimize(sink);
  }
}

}  // namespace

BENCHMARK(BM_DcaseClauses)
    ->ArgNames({"clauses"})
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Arg(16);
BENCHMARK(BM_Idt);
BENCHMARK(BM_IdtWithSection);
BENCHMARK(BM_DirectDispatchBaseline);
