// High level PIC code in Vienna Fortran -- Figure 2 of the paper, run
// twice: once with a static BLOCK distribution of the cells, and once with
// dynamic B_BLOCK(BOUNDS) rebalancing every 10th step.
//
// "For other problems, the motion of particles during the simulation may
// lead to a severe load imbalance. ... If so, a new BOUNDS array is
// computed and the cells redistributed to balance the workload."
#include <cstdio>

#include "vf/apps/pic_sim.hpp"
#include "vf/msg/spmd.hpp"

using namespace vf;  // NOLINT(google-build-using-namespace)

namespace {

apps::PicResult run(int nprocs, int rebalance_period, msg::CommStats* stats) {
  apps::PicConfig cfg;
  cfg.ncell = 200;
  cfg.npart_max = 1500;
  cfg.particles = 12000;
  cfg.steps = 80;
  cfg.rebalance_period = rebalance_period;

  msg::Machine machine(nprocs);
  apps::PicResult result;
  msg::run_spmd(machine, [&](msg::Context& ctx) {
    auto r = apps::run_pic(ctx, cfg);
    if (ctx.rank() == 0) result = std::move(r);
  });
  if (stats != nullptr) *stats = machine.total_stats();
  return result;
}

void report(const char* label, const apps::PicResult& r,
            const msg::CommStats& stats) {
  std::printf("\n=== %s ===\n", label);
  std::printf("step  imbalance  moved  rebalanced\n");
  for (std::size_t s = 0; s < r.steps.size(); s += 10) {
    const auto& st = r.steps[s];
    std::printf("%4zu  %9.3f  %5lld  %s\n", s + 1, st.imbalance,
                static_cast<long long>(st.moved),
                st.rebalanced ? "yes" : "");
  }
  std::printf("mean imbalance %.3f, max %.3f, %d rebalances, "
              "makespan %.0f units, %lld particles (%lld dropped)\n",
              r.mean_imbalance, r.max_imbalance, r.rebalances,
              r.makespan_units, static_cast<long long>(r.final_particles),
              static_cast<long long>(r.dropped));
  std::printf("communication: %s\n", stats.to_string().c_str());
}

}  // namespace

int main() {
  constexpr int kProcs = 4;
  msg::CommStats s1, s2;
  const auto statics = run(kProcs, /*rebalance_period=*/0, &s1);
  const auto dynamic = run(kProcs, /*rebalance_period=*/10, &s2);
  report("static BLOCK distribution", statics, s1);
  report("dynamic B_BLOCK, rebalance every 10 steps", dynamic, s2);
  std::printf("\nload-balance improvement (mean): %.2fx, makespan: %.2fx\n",
              statics.mean_imbalance / dynamic.mean_imbalance,
              statics.makespan_units / dynamic.makespan_units);
  return 0;
}
