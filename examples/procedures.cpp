// Procedure-boundary redistribution and runtime algorithm selection
// (paper Sections 3, 4, 5).
//
// Section 4 discusses rewriting the ADI code "such that it calls a
// different subroutine in the second loop, one which specifically declares
// its argument to be distributed by block in the first dimension", and
// warns that "this approach may lead to an explosion of subroutines which
// are different only in the distribution specified for their arguments".
// This example shows both styles:
//
//   1. phase procedures with explicitly distributed dummy arguments
//      (implicit redistribution at the call, VF vs HPF return semantics);
//   2. one distribution-polymorphic procedure that uses DCASE to select
//      the algorithm variant for whatever distribution arrives.
#include <cstdio>

#include "vf/msg/spmd.hpp"
#include "vf/query/dcase.hpp"
#include "vf/rt/dist_array.hpp"
#include "vf/rt/procedure.hpp"

using namespace vf;  // NOLINT(google-build-using-namespace)
using dist::IndexDomain;

namespace {

constexpr dist::Index kN = 32;

/// A distribution-polymorphic "phase" procedure: the dummy argument
/// inherits whatever distribution the actual has, and DCASE picks the
/// algorithm variant (the paper's alternative to one subroutine per
/// distribution).
void polymorphic_phase(msg::Context& ctx, rt::DistArray<double>& v) {
  const int arm =
      query::dcase({&v})
          .when({query::TypePattern{query::p_col(), query::p_block()}},
                [&] { /* x-lines local: column algorithm */ })
          .when({query::TypePattern{query::p_block(), query::p_col()}},
                [&] { /* y-lines local: row algorithm */ })
          .otherwise([&] { /* general fallback with communication */ })
          .run();
  if (ctx.rank() == 0) {
    std::printf("  polymorphic phase saw %s -> variant %d\n",
                v.distribution().type().to_string().c_str(), arm);
  }
}

void program(msg::Context& ctx) {
  rt::Env env(ctx);
  const bool root = ctx.rank() == 0;

  rt::DistArray<double> v(env, {.name = "V",
                                .domain = IndexDomain::of_extents({kN, kN}),
                                .dynamic = true,
                                .initial = {{dist::col(), dist::block()}}});
  v.fill(1.0);

  // --- style 1: explicitly distributed dummy arguments -------------------
  if (root) std::puts("explicit dummy distributions (VF return semantics):");
  for (int phase = 0; phase < 2; ++phase) {
    auto r1 = rt::call_procedure(
        {{&v, rt::FormalArg::with_type({dist::col(), dist::block()})}},
        rt::ArgReturnMode::ReturnNewDistribution, [&] {
          if (root) std::puts("  x-phase: columns local, no communication");
        });
    auto r2 = rt::call_procedure(
        {{&v, rt::FormalArg::with_type({dist::block(), dist::col()})}},
        rt::ArgReturnMode::ReturnNewDistribution, [&] {
          if (root) std::puts("  y-phase: rows local, no communication");
        });
    if (root) {
      std::printf("  phase %d: %d implicit redistributions\n", phase,
                  r1.entry_redistributions + r2.entry_redistributions);
    }
  }

  // --- style 2: one polymorphic procedure --------------------------------
  if (root) std::puts("\ndistribution-polymorphic procedure via DCASE:");
  polymorphic_phase(ctx, v);
  v.distribute(dist::DistributionType{dist::col(), dist::block()});
  polymorphic_phase(ctx, v);
  v.distribute(dist::DistributionType{dist::cyclic(2), dist::col()});
  polymorphic_phase(ctx, v);

  // --- HPF comparison ------------------------------------------------------
  ctx.barrier();
  if (root) std::puts("\nHPF restore-on-exit semantics double the motion:");
  v.distribute(dist::DistributionType{dist::col(), dist::block()});
  auto hpf = rt::call_procedure(
      {{&v, rt::FormalArg::with_type({dist::block(), dist::col()})}},
      rt::ArgReturnMode::RestoreOnExit, [] {});
  if (root) {
    std::printf("  entry redistributions %d, exit restores %d; V is %s\n",
                hpf.entry_redistributions, hpf.exit_restores,
                v.distribution().type().to_string().c_str());
  }
}

}  // namespace

int main() {
  msg::Machine machine(4);
  msg::run_spmd(machine, program);
  return 0;
}
