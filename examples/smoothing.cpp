// Runtime distribution choice for grid smoothing (paper Section 4).
//
// "If the code has been written such that the size of the grid is an input
// parameter, then the user can use the dynamic distribution facilities of
// Vienna Fortran to set the distribution of the grid" -- the choice
// between a column distribution (2 messages of size N per step) and a
// two-dimensional block distribution (4 messages of size N/p) depends on
// the ratio N/p and the machine's message startup/bandwidth costs.
//
// This example evaluates the paper's decision rule for several grid sizes
// on a 4-processor machine, runs the smoothing under the chosen layout,
// and verifies with IDT which distribution is active.
#include <cstdio>

#include "vf/apps/smoothing_sim.hpp"
#include "vf/msg/spmd.hpp"
#include "vf/query/dcase.hpp"

using namespace vf;  // NOLINT(google-build-using-namespace)

int main() {
  constexpr int kProcs = 16;
  const msg::CostModel cm{};  // iPSC-class alpha/beta defaults

  for (int p : {4, 16}) {
    std::printf("P=%d: grid size N | cols cost/step | 2d cost/step | chosen\n",
                p);
    for (dist::Index n : {32, 64, 128, 256, 512, 1024}) {
      const double c = apps::modeled_step_cost_us(apps::SmoothLayout::Columns,
                                                  n, p, cm, sizeof(double));
      const double g = apps::modeled_step_cost_us(apps::SmoothLayout::Grid2D,
                                                  n, p, cm, sizeof(double));
      const auto pick = apps::choose_layout(n, p, cm, sizeof(double));
      std::printf("%16lld | %11.1fus | %9.1fus | %s\n",
                  static_cast<long long>(n), c, g, apps::to_string(pick));
    }
  }

  // Run one configuration end-to-end under the chosen layout.
  const dist::Index n = 256;
  const auto layout = apps::choose_layout(n, kProcs, cm, sizeof(double));
  msg::Machine machine(kProcs, cm);
  msg::run_spmd(machine, [&](msg::Context& ctx) {
    const auto r =
        apps::run_smoothing(ctx, {.n = n, .steps = 8}, layout);
    if (ctx.rank() == 0) {
      std::printf("\nN=%lld on %d procs: ran %s, checksum %.4f\n",
                  static_cast<long long>(n), kProcs, apps::to_string(layout),
                  r.checksum);
    }
  });
  const auto s = machine.total_stats();
  std::printf("observed: %s\n", s.to_string().c_str());
  std::printf("modeled data time %.1f us (max rank %.1f us)\n",
              s.modeled_data_us(cm), machine.max_rank_modeled_us());
  return 0;
}
