// Asymmetric per-rank overlap areas driven by an adaptive refinement
// front: a 2-D (BLOCK, BLOCK) field smoothed with a locally refined
// stencil whose wide radius follows a front sweeping across the grid.
// Each rank declares ghost widths exactly as wide as its own cells'
// reads (DistArray::set_overlap, per-rank asymmetric); the plan-time
// spec exchange reconciles them so the send side packs precisely what
// each neighbour demands.  The run verifies bitwise against the
// sequential reference and prints the spec-exchange / plan-cache
// traffic: a moving front re-reconciles per step, yet every repeated
// (distribution, family) pair replays a cached plan.
#include <cstdio>

#include "vf/apps/amr_front.hpp"
#include "vf/msg/spmd.hpp"

using namespace vf;  // NOLINT(google-build-using-namespace)

int main() {
  constexpr int kProcs = 4;
  const apps::AmrFrontConfig cfg{
      .n = 96, .steps = 10, .front0 = 8, .front_step = 8};

  msg::Machine machine(kProcs);
  apps::AmrFrontResult res;
  msg::run_spmd(machine, [&](msg::Context& ctx) {
    const auto r = apps::run_amr_front(ctx, cfg);
    if (ctx.rank() == 0) res = r;
  });

  const double want = apps::amr_checksum(apps::amr_front_reference(cfg));
  std::printf("amr_front: n=%lld steps=%d on %d procs\n",
              static_cast<long long>(cfg.n), cfg.steps, kProcs);
  std::printf("checksum %.6f (sequential reference %.6f, %s)\n",
              res.checksum, want,
              res.checksum == want ? "bitwise equal" : "MISMATCH");
  std::printf(
      "spec exchanges %llu, halo plan hits %llu / misses %llu\n",
      static_cast<unsigned long long>(res.spec_exchanges),
      static_cast<unsigned long long>(res.halo_plan_hits),
      static_cast<unsigned long long>(res.halo_plan_misses));
  return res.checksum == want ? 0 : 1;
}
