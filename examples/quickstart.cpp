// Quickstart: the core vocabulary of Vienna Fortran dynamic distributions
// in one program -- declarations (DYNAMIC, RANGE, DIST, CONNECT), the
// DISTRIBUTE statement, NOTRANSFER, the DCASE construct and the IDT
// intrinsic, with communication statistics from the virtual machine.
//
// Every block cites the paper construct it transcribes.
#include <cstdio>

#include "vf/msg/spmd.hpp"
#include "vf/parti/schedule.hpp"
#include "vf/query/dcase.hpp"
#include "vf/rt/dist_array.hpp"

using namespace vf;             // NOLINT(google-build-using-namespace)
using dist::IndexDomain;
using dist::IndexVec;

namespace {

void program(msg::Context& ctx) {
  rt::Env env(ctx);
  const bool root = ctx.rank() == 0;

  // --- Example 2 of the paper: dynamic array annotations -----------------
  //
  //   REAL B1(M)  DYNAMIC
  //   REAL B2(N)  DYNAMIC, DIST (BLOCK)
  //   REAL B3(N,N) DYNAMIC, RANGE ((BLOCK,:),(*,CYCLIC)), DIST(BLOCK,:)
  //   REAL A1(N,N) DYNAMIC, CONNECT (=B3)
  constexpr dist::Index M = 12, N = 16;
  rt::DistArray<double> B1(env, {.name = "B1",
                                 .domain = IndexDomain::of_extents({M}),
                                 .dynamic = true});
  rt::DistArray<double> B2(env, {.name = "B2",
                                 .domain = IndexDomain::of_extents({N}),
                                 .dynamic = true,
                                 .initial = {{dist::block()}}});
  rt::DistArray<double> B3(
      env, {.name = "B3",
            .domain = IndexDomain::of_extents({N, N}),
            .dynamic = true,
            .initial = {{dist::block(), dist::col()}},
            .range = {{query::p_block(), query::p_col()},
                      {query::any_dim(), query::p_cyclic_any()}}});
  rt::DistArray<double> A1(env,
                           {.name = "A1",
                            .domain = IndexDomain::of_extents({N, N}),
                            .dynamic = true},
                           rt::Connection::extraction(B3));

  if (root) {
    std::printf("declared B1 (no initial dist), B2 %s, B3 %s; C(B3)={B3,A1}\n",
                B2.distribution().type().to_string().c_str(),
                B3.distribution().type().to_string().c_str());
  }

  // --- owner-computes initialization --------------------------------------
  B2.init([](const IndexVec& i) { return static_cast<double>(i[0]); });
  B3.init([](const IndexVec& i) {
    return static_cast<double>(100 * i[0] + i[1]);
  });
  A1.fill(0.0);

  // --- Example 3: distribute statements ----------------------------------
  //
  //   DISTRIBUTE B1 :: (BLOCK)
  B1.distribute(dist::DistributionType{dist::block()});
  B1.fill(1.0);

  //   K = expr;  DISTRIBUTE B2 :: (CYCLIC(K))
  const dist::Index K = 3;  // "runtime" value
  B2.distribute(dist::DistributionType{dist::cyclic(K)});

  //   DISTRIBUTE B3 :: (:, CYCLIC(2)) -- redistributes A1 too (same class),
  //   but A1's contents are not needed: NOTRANSFER suppresses its data
  //   motion (Section 2.4).
  B3.distribute(dist::DistributionType{dist::col(), dist::cyclic(2)},
                rt::NoTransfer{&A1});

  // Values of B2/B3 survived their redistributions.
  const double checksum = B3.reduce(msg::ReduceOp::Sum);
  // sum_{i,j<=N} (100 i + j) = 100 * N * N(N+1)/2 + N * N(N+1)/2.
  const double expected = 101.0 * N * (N * (N + 1) / 2.0);
  if (root) {
    std::printf("B3 redistributed to %s; checksum %.0f (expected %.0f)\n",
                B3.distribution().type().to_string().c_str(), checksum,
                expected);
  }

  // --- Section 2.5: the IDT intrinsic and the DCASE construct ------------
  const bool b2_cyclic = query::idt(B2, {query::p_cyclic_any()});
  if (root) std::printf("IDT(B2, (CYCLIC(*))) = %s\n", b2_cyclic ? "T" : "F");

  const int arm =
      query::dcase({&B2, &B3})
          .when({query::TypePattern{query::p_block()}},
                [&] { std::puts("B2 is BLOCK"); })
          .when_named({{"B3", {query::any_dim(), query::p_cyclic(2)}}},
                      [&] {
                        if (root) std::puts("B3 second dim is CYCLIC(2)");
                      })
          .otherwise([&] {
            if (root) std::puts("fallback");
          })
          .run();
  if (root) std::printf("dcase selected arm %d\n", arm);

  // --- Section 3.2: inspector/executor for an irregular access -----------
  std::vector<IndexVec> wanted;
  for (dist::Index k = 1; k <= N; k += 3) wanted.push_back({k});
  parti::Schedule sched(ctx, B2.dist_handle(), wanted);
  std::vector<double> vals(wanted.size());
  sched.gather(ctx, B2, vals);
  if (root) {
    std::printf("gathered B2(1,4,7,...): %.0f %.0f %.0f ...\n", vals[0],
                vals[1], vals[2]);
  }

  ctx.barrier();
  if (root) {
    const auto s = ctx.machine().total_stats();
    std::printf("machine totals: %s\n", s.to_string().c_str());
    std::printf("modeled communication time: %.1f us (iPSC-class alpha/beta)\n",
                s.modeled_us(ctx.cost_model()));
  }
}

}  // namespace

int main() {
  msg::Machine machine(4);
  msg::run_spmd(machine, program);
  return 0;
}
