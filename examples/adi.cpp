// ADI iteration in Vienna Fortran -- a transcription of Figure 1.
//
//   REAL U(NX,NY), F(NX,NY) DIST (:, BLOCK)
//   REAL V(NX,NY) DYNAMIC, RANGE((:,BLOCK),(BLOCK,:)), DIST (:, BLOCK)
//
//   CALL RESID(V, U, F, NX, NY)
//   DO J = 1, NY            ! sweep over x-lines: columns are local
//     CALL TRIDIAG(V(:,J), NX)
//   ENDDO
//   DISTRIBUTE V :: (BLOCK, :)
//   DO I = 1, NX            ! sweep over y-lines: rows are local
//     CALL TRIDIAG(V(I,:), NY)
//   ENDDO
//
// "Thus, all the communication is confined to the redistribution
// operation, with only local accesses during the computation."
#include <cstdio>
#include <cmath>
#include <vector>

#include "vf/apps/kernels.hpp"
#include "vf/msg/spmd.hpp"
#include "vf/rt/dist_array.hpp"

using namespace vf;  // NOLINT(google-build-using-namespace)
using dist::IndexDomain;
using dist::IndexVec;

namespace {

constexpr dist::Index NX = 64;
constexpr dist::Index NY = 64;
constexpr int kIterations = 4;

/// RESID: computes the right-hand side; here a smooth test field, purely
/// local under any distribution.
void resid(rt::DistArray<double>& v, const rt::DistArray<double>& u,
           const rt::DistArray<double>& f) {
  v.for_owned([&](const IndexVec& i, double& x) {
    x = u.at(i) + f.at(i);
  });
}

void program(msg::Context& ctx) {
  rt::Env env(ctx);
  const bool root = ctx.rank() == 0;

  rt::DistArray<double> u(env, {.name = "U",
                                .domain = IndexDomain::of_extents({NX, NY}),
                                .initial = {{dist::col(), dist::block()}}});
  rt::DistArray<double> f(env, {.name = "F",
                                .domain = IndexDomain::of_extents({NX, NY}),
                                .initial = {{dist::col(), dist::block()}}});
  rt::DistArray<double> v(
      env, {.name = "V",
            .domain = IndexDomain::of_extents({NX, NY}),
            .dynamic = true,
            .initial = {{dist::col(), dist::block()}},
            .range = {{query::p_col(), query::p_block()},
                      {query::p_block(), query::p_col()}}});

  u.init([](const IndexVec& i) {
    return std::sin(0.1 * static_cast<double>(i[0])) +
           std::cos(0.1 * static_cast<double>(i[1]));
  });
  f.init([](const IndexVec& i) {
    return 1e-3 * static_cast<double>(i[0] * i[1]);
  });

  for (int iter = 0; iter < kIterations; ++iter) {
    resid(v, u, f);

    // Sweep over x-lines: V is (:, BLOCK), each column local to one rank.
    {
      const auto cols = v.distribution().owned_in_dim(ctx.rank(), 1);
      std::vector<double> line(static_cast<std::size_t>(NX));
      for (dist::Index j : cols) {
        for (dist::Index i = 1; i <= NX; ++i) {
          line[static_cast<std::size_t>(i - 1)] = v.at({i, j});
        }
        apps::tridiag(line);
        for (dist::Index i = 1; i <= NX; ++i) {
          v.at({i, j}) = line[static_cast<std::size_t>(i - 1)];
        }
      }
    }

    // DISTRIBUTE V :: (BLOCK, :) -- the only communication of the step.
    v.distribute(dist::DistributionType{dist::block(), dist::col()});

    // Sweep over y-lines: rows are now local.
    {
      const auto rows = v.distribution().owned_in_dim(ctx.rank(), 0);
      std::vector<double> line(static_cast<std::size_t>(NY));
      for (dist::Index i : rows) {
        for (dist::Index j = 1; j <= NY; ++j) {
          line[static_cast<std::size_t>(j - 1)] = v.at({i, j});
        }
        apps::tridiag(line);
        for (dist::Index j = 1; j <= NY; ++j) {
          v.at({i, j}) = line[static_cast<std::size_t>(j - 1)];
        }
      }
    }

    // Remap back for the next iteration's x-sweep.
    v.distribute(dist::DistributionType{dist::col(), dist::block()});

    const double norm = v.reduce(msg::ReduceOp::Max);
    if (root) std::printf("iter %d: max(V) = %.6f\n", iter, norm);
  }

  ctx.barrier();
  if (root) {
    const auto s = ctx.machine().total_stats();
    std::printf("\nADI %lldx%lld, %d iterations on %d processors\n",
                static_cast<long long>(NX), static_cast<long long>(NY),
                kIterations, ctx.nprocs());
    std::printf("all communication confined to DISTRIBUTE: %s\n",
                s.to_string().c_str());
    std::printf("modeled communication time: %.1f us\n",
                s.modeled_us(ctx.cost_model()));
  }
}

}  // namespace

int main() {
  msg::Machine machine(4);
  msg::run_spmd(machine, program);
  return 0;
}
